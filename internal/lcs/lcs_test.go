package lcs

import (
	"fmt"
	"testing"
	"testing/quick"

	"ravbmc/internal/lang"
	"ravbmc/internal/ra"
)

// pingPong is a system that must round-trip a message: send a on c,
// receive a from c, reach "done".
func pingPong() *System {
	return &System{
		Init:     "q0",
		States:   []string{"q0", "q1", "done"},
		Channels: []string{"c"},
		Rules: []Rule{
			{From: "q0", Op: Send, Ch: "c", Sym: 'a', To: "q1"},
			{From: "q1", Op: Recv, Ch: "c", Sym: 'a', To: "done"},
		},
	}
}

func TestReachableSimple(t *testing.T) {
	s := pingPong()
	got, err := s.Reachable("done")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("done must be reachable (send then receive)")
	}
}

func TestUnreachableWhenRecvFirst(t *testing.T) {
	// Receiving before anything was sent is impossible even with loss.
	s := &System{
		Init:     "q0",
		States:   []string{"q0", "done"},
		Channels: []string{"c"},
		Rules: []Rule{
			{From: "q0", Op: Recv, Ch: "c", Sym: 'a', To: "done"},
		},
	}
	got, err := s.Reachable("done")
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("done must be unreachable: channel starts empty")
	}
}

func TestLossMakesProtocolsIncomplete(t *testing.T) {
	// The system must receive a then b, but only ever sends a. With a
	// second rule sending b guarded behind receiving a twice, loss can
	// never conjure the b.
	s := &System{
		Init:     "q0",
		States:   []string{"q0", "q1", "q2", "done"},
		Channels: []string{"c"},
		Rules: []Rule{
			{From: "q0", Op: Send, Ch: "c", Sym: 'a', To: "q1"},
			{From: "q1", Op: Recv, Ch: "c", Sym: 'b', To: "done"},
		},
	}
	got, err := s.Reachable("done")
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("b was never sent; done must be unreachable")
	}
}

func TestLossAllowsSkipping(t *testing.T) {
	// Send a, send b, then receive b directly: lossiness drops the a.
	s := &System{
		Init:     "q0",
		States:   []string{"q0", "q1", "q2", "done"},
		Channels: []string{"c"},
		Rules: []Rule{
			{From: "q0", Op: Send, Ch: "c", Sym: 'a', To: "q1"},
			{From: "q1", Op: Send, Ch: "c", Sym: 'b', To: "q2"},
			{From: "q2", Op: Recv, Ch: "c", Sym: 'b', To: "done"},
		},
	}
	got, err := s.Reachable("done")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("lossy semantics must allow dropping the a")
	}
}

func TestTwoChannels(t *testing.T) {
	s := &System{
		Init:     "q0",
		States:   []string{"q0", "q1", "q2", "done"},
		Channels: []string{"c", "d"},
		Rules: []Rule{
			{From: "q0", Op: Send, Ch: "c", Sym: 'a', To: "q1"},
			{From: "q1", Op: Send, Ch: "d", Sym: 'b', To: "q2"},
			{From: "q2", Op: Recv, Ch: "d", Sym: 'b', To: "q0"},
			{From: "q2", Op: Recv, Ch: "c", Sym: 'a', To: "done"},
		},
	}
	got, err := s.Reachable("done")
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("done must be reachable via the c channel")
	}
}

func TestBackwardAgreesWithForward(t *testing.T) {
	// Differential test on a family of small systems: loop systems that
	// require receiving a specific word.
	for i, want := range []string{"a", "ab", "ba", "abc", "aa", "cab"} {
		s := wordSystem("abc", want)
		back, err := s.Reachable("done")
		if err != nil {
			t.Fatal(err)
		}
		fwd, err := s.ReachableForward("done", 6)
		if err != nil {
			t.Fatal(err)
		}
		if back != fwd {
			t.Errorf("case %d (%q): backward=%v forward=%v", i, want, back, fwd)
		}
		if !back {
			t.Errorf("case %d (%q): expected reachable (sender loops over alphabet)", i, want)
		}
	}
}

// wordSystem sends arbitrary words over the alphabet (a loop of sends)
// and must receive exactly `want`.
func wordSystem(alphabet, want string) *System {
	s := &System{Init: "s", Channels: []string{"c"}}
	s.States = append(s.States, "s")
	for _, a := range alphabet {
		s.Rules = append(s.Rules, Rule{From: "s", Op: Send, Ch: "c", Sym: byte(a), To: "s"})
	}
	prev := "s"
	for i := 0; i < len(want); i++ {
		st := fmt.Sprintf("r%d", i+1)
		s.States = append(s.States, st)
		s.Rules = append(s.Rules, Rule{From: prev, Op: Recv, Ch: "c", Sym: want[i], To: st})
		prev = st
	}
	s.States = append(s.States, "done")
	s.Rules = append(s.Rules, Rule{From: prev, Op: Nop, To: "done"})
	return s
}

func TestValidateErrors(t *testing.T) {
	bad := []*System{
		{Init: "x", States: []string{"q"}},
		{Init: "q", States: []string{"q", "q"}},
		{Init: "q", States: []string{"q"}, Rules: []Rule{{From: "q", Op: Send, Ch: "c", Sym: 'a', To: "q"}}},
		{Init: "q", States: []string{"q"}, Rules: []Rule{{From: "q", Op: Nop, To: "nosuch"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSubwordProperties(t *testing.T) {
	if err := quick.Check(func(a, b string) bool {
		// A word embeds into itself appended to anything.
		return subword(a, a) && subword(a, a+b) && subword(a, b+a)
	}, nil); err != nil {
		t.Error(err)
	}
	if subword("ab", "b") || subword("ab", "ba") || !subword("", "x") {
		t.Error("subword base cases wrong")
	}
}

// TestRAChannelIsLossyFIFO validates the Theorem 4.3 mechanism: the RA
// program of SequencedChannelProgram can deliver exactly the subwords of
// the sent word.
func TestRAChannelIsLossyFIFO(t *testing.T) {
	sent := "abc"
	for _, tc := range []struct {
		want string
		ok   bool
	}{
		{"abc", true}, {"ab", true}, {"ac", true}, {"bc", true},
		{"a", true}, {"b", true}, {"c", true}, {"", true},
		{"ba", false}, {"ca", false}, {"cb", false}, {"aa", false},
		{"abcc", false},
	} {
		p := SequencedChannelProgram(sent, tc.want)
		sys := ra.NewSystem(lang.MustCompile(p))
		res := sys.Explore(ra.Options{
			ViewBound:    -1,
			TargetLabels: map[string]string{"consumer": "got"},
		})
		if res.TargetReached != tc.ok {
			t.Errorf("receive %q from sent %q: got reachable=%v, want %v",
				tc.want, sent, res.TargetReached, tc.ok)
		}
	}
}

// TestPlainChannelAllowsDuplicates documents why the sequenced variant
// exists: without sequence numbers a symbol can be re-delivered.
func TestPlainChannelAllowsDuplicates(t *testing.T) {
	p := LossyChannelProgram("ab", "aab")
	sys := ra.NewSystem(lang.MustCompile(p))
	res := sys.Explore(ra.Options{
		ViewBound:    -1,
		TargetLabels: map[string]string{"consumer": "got"},
	})
	if !res.TargetReached {
		t.Error("plain channel should re-deliver the 'a' at the view")
	}
}
