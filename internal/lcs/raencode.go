package lcs

import (
	"ravbmc/internal/lang"
)

// LossyChannelProgram builds the RA program at the heart of the
// Theorem 4.3 reduction: a producer writes the word (symbols encoded as
// 1-based values) to a single shared variable, and a consumer performs
// len(want) reads, asserting it observed exactly `want` followed by the
// end marker. Because an RA read may pick any message at or above the
// consumer's view, the receivable words are exactly the subwords of the
// sent word — a lossy FIFO channel. The program is UNSAFE (the
// assertion can fail... rather: the target label reachable) iff want is
// a subword of sent; callers decide reachability of the "got" label.
func LossyChannelProgram(sent, want string) *lang.Program {
	p := lang.NewProgram("lossy_channel", "ch")
	prod := p.AddProc("producer")
	for i := 0; i < len(sent); i++ {
		prod.Add(lang.WriteC("ch", symVal(sent[i])))
	}
	cons := p.AddProc("consumer", "r")
	for i := 0; i < len(want); i++ {
		cons.Add(
			lang.ReadS("r", "ch"),
			lang.AssumeS(lang.Eq(lang.R("r"), lang.C(symVal(want[i])))),
		)
	}
	cons.Add(lang.LabelS("got", lang.TermS()))
	return p
}

func symVal(b byte) lang.Value { return lang.Value(b-'a') + 1 }

// Note on ordering: coherence (the per-variable modification order) and
// the monotonicity of views make re-reading an old message impossible,
// so received symbols respect the sent order; skipping ahead models
// message loss. Together these give exactly the lossy-FIFO semantics —
// the mechanism the paper's Theorem 4.3 reduction relies on, and the
// reason reachability without CAS is still non-primitive recursive.
//
// One caveat the full reduction must engineer around (with extra
// handshake variables, as in the TSO construction of Atig et al.): a
// read may also re-deliver the message at the consumer's current view.
// ConsumableExactlyOnce shows the standard fix: interleave the payload
// with strictly increasing sequence numbers so each value can be
// matched at most once.

// SequencedChannelProgram writes each symbol tagged with its position
// (value = pos*256 + sym), so every message is distinct and the
// consumer's assumes accept each sent message at most once. The
// receivable tag sequences are then exactly the strictly increasing
// subsequences — a faithful lossy FIFO without duplication.
func SequencedChannelProgram(sent, want string) *lang.Program {
	p := lang.NewProgram("lossy_channel_seq", "ch")
	prod := p.AddProc("producer")
	pos := map[int][]int{} // symbol -> positions in sent
	for i := 0; i < len(sent); i++ {
		prod.Add(lang.WriteC("ch", lang.Value(i+1)*256+symVal(sent[i])))
		pos[int(symVal(sent[i]))] = append(pos[int(symVal(sent[i]))], i+1)
	}
	cons := p.AddProc("consumer", "r", "last")
	cons.Add(lang.AssignS("last", lang.C(0)))
	for i := 0; i < len(want); i++ {
		cons.Add(
			lang.ReadS("r", "ch"),
			// The read value must carry the wanted symbol and a strictly
			// larger sequence number than anything consumed before.
			lang.AssumeS(lang.Eq(lang.Binary{Op: lang.OpMod, L: lang.R("r"), R: lang.C(256)},
				lang.C(symVal(want[i])))),
			lang.AssumeS(lang.Gt(lang.R("r"), lang.R("last"))),
			lang.AssignS("last", lang.R("r")),
		)
	}
	cons.Add(lang.LabelS("got", lang.TermS()))
	return p
}
