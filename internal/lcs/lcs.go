// Package lcs implements lossy channel systems (LCS) and their decidable
// control-state reachability, the substrate of the paper's Theorem 4.3:
// reachability of RA programs without CAS is non-primitive recursive, by
// reduction from LCS reachability (as for TSO, Atig et al. POPL'10).
//
// An LCS is a finite automaton whose transitions send to or receive from
// unbounded FIFO channels that may lose messages at any time. Control
// reachability is decidable (Abdulla–Jonsson): configurations are
// well-quasi-ordered by subword embedding, so backward reachability over
// upward-closed sets — represented by finite bases of minimal elements —
// terminates by Higman's lemma.
//
// The connection to RA exploited by the theorem is packaged in
// LossyChannelProgram: an RA reader may skip over messages of a variable
// (any message at or above its view is readable), so a producer writing
// a sequence and a consumer reading it realise exactly a lossy FIFO —
// the received word is always a subword of the sent word, and every
// subword is receivable.
package lcs

import (
	"fmt"
	"strings"
)

// OpKind classifies a transition operation.
type OpKind int

// Transition operations.
const (
	Nop  OpKind = iota
	Send        // append Sym to channel Ch (may be lost)
	Recv        // consume Sym from the head of channel Ch
)

// Rule is one transition of the automaton.
type Rule struct {
	From string
	Op   OpKind
	Ch   string // channel, for Send/Recv
	Sym  byte   // symbol, for Send/Recv
	To   string
}

// System is a lossy channel system.
type System struct {
	Init     string
	States   []string
	Channels []string
	Rules    []Rule
}

// Validate checks naming consistency.
func (s *System) Validate() error {
	st := map[string]bool{}
	for _, q := range s.States {
		if q == "" {
			return fmt.Errorf("lcs: empty state name")
		}
		if st[q] {
			return fmt.Errorf("lcs: duplicate state %q", q)
		}
		st[q] = true
	}
	if !st[s.Init] {
		return fmt.Errorf("lcs: initial state %q not declared", s.Init)
	}
	ch := map[string]bool{}
	for _, c := range s.Channels {
		ch[c] = true
	}
	for i, r := range s.Rules {
		if !st[r.From] || !st[r.To] {
			return fmt.Errorf("lcs: rule %d uses undeclared state", i)
		}
		if r.Op != Nop && !ch[r.Ch] {
			return fmt.Errorf("lcs: rule %d uses undeclared channel %q", i, r.Ch)
		}
	}
	return nil
}

// config is an element of the backward-reachability basis: a control
// state with minimal required channel contents.
type config struct {
	state string
	// chans maps channel name to required content (head first).
	chans map[string]string
}

func (c config) key() string {
	var b strings.Builder
	b.WriteString(c.state)
	b.WriteByte('|')
	for _, ch := range sortedKeys(c.chans) {
		b.WriteString(ch)
		b.WriteByte('=')
		b.WriteString(c.chans[ch])
		b.WriteByte(';')
	}
	return b.String()
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// subword reports whether a embeds into b (order-preserving).
func subword(a, b string) bool {
	i := 0
	for j := 0; i < len(a) && j < len(b); j++ {
		if a[i] == b[j] {
			i++
		}
	}
	return i == len(a)
}

// leq is the well-quasi-order on configurations: same control state and
// per-channel subword embedding.
func (c config) leq(d config) bool {
	if c.state != d.state {
		return false
	}
	for ch, w := range c.chans {
		if !subword(w, d.chans[ch]) {
			return false
		}
	}
	return true
}

// Reachable decides whether the target control state is reachable from
// (Init, all channels empty) under the lossy semantics, by backward
// reachability: it saturates the basis of the upward closure of
// {(target, ε⃗)} under predecessor computation and checks whether the
// initial configuration is covered.
func (s *System) Reachable(target string) (bool, error) {
	if err := s.Validate(); err != nil {
		return false, err
	}
	empty := func() map[string]string {
		m := make(map[string]string, len(s.Channels))
		for _, c := range s.Channels {
			m[c] = ""
		}
		return m
	}
	basis := []config{{state: target, chans: empty()}}
	seen := map[string]bool{basis[0].key(): true}
	work := []config{basis[0]}

	addIfMinimal := func(c config) {
		if seen[c.key()] {
			return
		}
		// Drop c if an existing element is below it (c adds nothing).
		for _, d := range basis {
			if d.leq(c) {
				return
			}
		}
		// Remove elements dominated by c.
		kept := basis[:0]
		for _, d := range basis {
			if !c.leq(d) {
				kept = append(kept, d)
			}
		}
		basis = append(kept, c)
		seen[c.key()] = true
		work = append(work, c)
	}

	for len(work) > 0 {
		c := work[len(work)-1]
		work = work[:len(work)-1]
		for _, r := range s.Rules {
			if r.To != c.state {
				continue
			}
			p := config{state: r.From, chans: make(map[string]string, len(c.chans))}
			for ch, w := range c.chans {
				p.chans[ch] = w
			}
			switch r.Op {
			case Nop:
			case Send:
				// After send, channel holds w (up to loss) with Sym
				// appended (possibly lost). Minimal pre: strip a
				// trailing Sym if present; otherwise the send was lost
				// and the requirement is unchanged.
				w := p.chans[r.Ch]
				if len(w) > 0 && w[len(w)-1] == r.Sym {
					p.chans[r.Ch] = w[:len(w)-1]
				}
			case Recv:
				// Before the receive, the channel additionally held Sym
				// at its head.
				p.chans[r.Ch] = string(r.Sym) + p.chans[r.Ch]
			}
			addIfMinimal(p)
		}
		if cv := (config{state: s.Init, chans: empty()}); covered(basis, cv) {
			return true, nil
		}
	}
	return covered(basis, config{state: s.Init, chans: emptyChans(s.Channels)}), nil
}

func emptyChans(chs []string) map[string]string {
	m := make(map[string]string, len(chs))
	for _, c := range chs {
		m[c] = ""
	}
	return m
}

// covered reports whether some basis element is ≤ c, i.e. c lies in the
// upward closure.
func covered(basis []config, c config) bool {
	for _, d := range basis {
		if d.leq(c) {
			return true
		}
	}
	return false
}
