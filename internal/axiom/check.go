package axiom

import "fmt"

// Consistent checks the RA axioms on the execution graph.
func (x *Execution) Consistent() (bool, string) {
	n := len(x.Events)
	po := newRelation(n)
	rf := newRelation(n)
	mo := newRelation(n)
	fr := newRelation(n)

	// po: per process, in index order; init events po-precede everything
	// of every process (they are hb-before all events via rf from init or
	// directly — we add them as po-minimal for hb purposes, matching the
	// convention that initialisation happens before the program starts).
	byProc := map[int][]int{}
	for i := range x.Events {
		e := &x.Events[i]
		byProc[e.Proc] = append(byProc[e.Proc], e.ID)
	}
	for p, ids := range byProc {
		if p == -1 {
			continue
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				po.set(ids[i], ids[j])
			}
		}
	}
	for _, initID := range byProc[-1] {
		for i := range x.Events {
			if x.Events[i].Proc != -1 {
				po.set(initID, x.Events[i].ID)
			}
		}
	}

	// rf, with well-formedness checks.
	for r, w := range x.RF {
		re, we := &x.Events[r], &x.Events[w]
		if !re.IsRead() || !we.IsWrite() {
			return false, fmt.Sprintf("rf e%d<-e%d connects non-read/non-write", r, w)
		}
		if re.Var != we.Var {
			return false, fmt.Sprintf("rf e%d<-e%d crosses variables", r, w)
		}
		if re.ValR != we.ValW {
			return false, fmt.Sprintf("rf e%d<-e%d value mismatch", r, w)
		}
		rf.set(w, r)
	}
	for i := range x.Events {
		if x.Events[i].IsRead() && x.Events[i].Proc != -1 {
			if _, ok := x.RF[x.Events[i].ID]; !ok {
				return false, fmt.Sprintf("read e%d has no rf source", x.Events[i].ID)
			}
		}
	}

	// mo: per-variable total order over that variable's writes.
	for v, order := range x.MO {
		seen := map[int]bool{}
		for i, a := range order {
			ea := &x.Events[a]
			if !ea.IsWrite() || ea.Var != v {
				return false, fmt.Sprintf("mo of v%d contains non-write e%d", v, a)
			}
			if seen[a] {
				return false, fmt.Sprintf("mo of v%d repeats e%d", v, a)
			}
			seen[a] = true
			for _, b := range order[i+1:] {
				mo.set(a, b)
			}
		}
		// Every write of v must appear.
		for i := range x.Events {
			if x.Events[i].IsWrite() && x.Events[i].Var == v && !seen[x.Events[i].ID] {
				return false, fmt.Sprintf("mo of v%d misses write e%d", v, x.Events[i].ID)
			}
		}
	}

	// fr = rf⁻¹ ; mo.
	for r, w := range x.RF {
		for i := range x.Events {
			if mo.has(w, x.Events[i].ID) {
				fr.set(r, x.Events[i].ID)
			}
		}
	}

	// ATOMICITY: an update u reading w must be mo-immediately after w:
	// there is no write w' with w ->mo w' ->mo u.
	for r, w := range x.RF {
		if x.Events[r].Kind != KindUpdate {
			continue
		}
		for i := range x.Events {
			mid := x.Events[i].ID
			if mo.has(w, mid) && mo.has(mid, r) {
				return false, fmt.Sprintf("atomicity: e%d between e%d and update e%d", mid, w, r)
			}
		}
	}

	// hb = (po ∪ rf)⁺ — in the RA fragment all reads acquire and all
	// writes release, so every rf edge synchronises.
	hb := newRelation(n)
	hb.union(po)
	hb.union(rf)
	hb.closeTransitive()

	// eco = (rf ∪ mo ∪ fr)⁺.
	eco := newRelation(n)
	eco.union(rf)
	eco.union(mo)
	eco.union(fr)
	eco.closeTransitive()

	// COHERENCE: hb;eco? irreflexive, i.e. hb irreflexive and hb;eco
	// irreflexive.
	if !hb.irreflexive() {
		return false, "hb is cyclic"
	}
	if !hb.compose(eco).irreflexive() {
		return false, "coherence: hb;eco has a cycle"
	}
	return true, ""
}
