package axiom

import (
	"fmt"
	"sort"
	"strings"

	"ravbmc/internal/lang"
)

// Enumerator generates the RA-consistent executions of a loop-free
// program directly from the axioms: it enumerates interleavings in
// which every read picks some already-issued write (complete for RA,
// where rf ⊆ hb guarantees such a linearisation exists), then closes
// each candidate (po, rf) graph under all per-variable modification
// orders and keeps the ones satisfying the axioms.
type Enumerator struct {
	prog     *lang.CompiledProgram
	varIdx   map[string]int
	nvars    int
	fenceVar int
	regIdx   []map[string]int

	seenGraph map[string]bool
	outcomes  map[string]bool
	render    func(regs [][]lang.Value) string
	steps     int
	maxSteps  int
	// Truncated reports whether the step budget was exhausted.
	Truncated bool
	// UseSC switches the consistency check from the RA axioms to
	// sequential consistency (SCConsistent), turning the enumerator into
	// a declarative SC oracle.
	UseSC bool
}

// NewEnumerator prepares the enumeration. The program must be loop-free
// and in the RA fragment. render receives the per-process register
// files of a completed execution.
func NewEnumerator(cp *lang.CompiledProgram, render func(regs [][]lang.Value) string) (*Enumerator, error) {
	if cp.Source != nil {
		if err := cp.Source.ValidateRA(); err != nil {
			return nil, err
		}
		if lang.MaxLoopDepth(cp.Source) != 0 {
			return nil, fmt.Errorf("axiom: program %q has loops; unroll it first", cp.Name)
		}
	}
	e := &Enumerator{
		prog:      cp,
		varIdx:    map[string]int{},
		seenGraph: map[string]bool{},
		outcomes:  map[string]bool{},
		render:    render,
		maxSteps:  1 << 24,
	}
	for i, v := range cp.Vars {
		e.varIdx[v] = i
	}
	e.nvars = len(cp.Vars)
	e.fenceVar = -1
	for _, pr := range cp.Procs {
		for i := range pr.Code {
			if pr.Code[i].Op == lang.OpFenceOp && e.fenceVar < 0 {
				e.fenceVar = e.nvars
				e.nvars++
			}
		}
		m := map[string]int{}
		for i, r := range pr.Regs {
			m[r] = i
		}
		e.regIdx = append(e.regIdx, m)
	}
	return e, nil
}

// state is one node of the interleaving enumeration.
type state struct {
	pcs    []int
	regs   [][]lang.Value
	events []Event
	rf     map[int]int
	// writes[v] lists write event ids of variable v, in issue order
	// (the init event first).
	writes [][]int
}

func (e *Enumerator) initState() *state {
	s := &state{rf: map[int]int{}, writes: make([][]int, e.nvars)}
	for v := 0; v < e.nvars; v++ {
		s.events = append(s.events, Event{ID: v, Proc: -1, Kind: KindWrite, Var: v})
		s.writes[v] = []int{v}
	}
	for p := range e.prog.Procs {
		s.pcs = append(s.pcs, 0)
		s.regs = append(s.regs, make([]lang.Value, len(e.prog.Procs[p].Regs)))
	}
	return s
}

func (s *state) clone() *state {
	d := &state{
		pcs:    append([]int(nil), s.pcs...),
		regs:   make([][]lang.Value, len(s.regs)),
		events: append([]Event(nil), s.events...),
		rf:     make(map[int]int, len(s.rf)),
		writes: make([][]int, len(s.writes)),
	}
	for i := range s.regs {
		d.regs[i] = append([]lang.Value(nil), s.regs[i]...)
	}
	for k, v := range s.rf {
		d.rf[k] = v
	}
	for i := range s.writes {
		d.writes[i] = append([]int(nil), s.writes[i]...)
	}
	return d
}

// Outcomes runs the enumeration and returns the set of outcome strings
// of completed executions that admit at least one RA-consistent
// modification order.
func (e *Enumerator) Outcomes() map[string]bool {
	e.interleave(e.initState())
	return e.outcomes
}

func (e *Enumerator) interleave(s *state) {
	if e.steps++; e.steps > e.maxSteps {
		e.Truncated = true
		return
	}
	progressed := false
	for p := range e.prog.Procs {
		in := &e.prog.Procs[p].Code[s.pcs[p]]
		if in.Op == lang.OpTermProc {
			continue
		}
		progressed = true
		e.step(s, p, in)
	}
	if !progressed {
		e.complete(s)
	}
}

func (e *Enumerator) step(s *state, p int, in *lang.Instr) {
	env := func(name string) lang.Value {
		if i, ok := e.regIdx[p][name]; ok {
			return s.regs[p][i]
		}
		return 0
	}
	local := func(mutate func(d *state)) {
		d := s.clone()
		d.pcs[p] = in.Next
		if mutate != nil {
			mutate(d)
		}
		e.interleave(d)
	}
	switch in.Op {
	case lang.OpReadVar:
		v := e.varIdx[in.Var]
		ri := e.regIdx[p][in.Reg]
		for _, w := range s.writes[v] {
			w := w
			val := s.events[w].ValW
			d := s.clone()
			d.pcs[p] = in.Next
			d.regs[p][ri] = val
			id := len(d.events)
			d.events = append(d.events, Event{ID: id, Proc: p, Idx: id, Kind: KindRead, Var: v, ValR: val})
			d.rf[id] = w
			e.interleave(d)
		}
	case lang.OpWriteVar:
		val := in.Val.Eval(env)
		v := e.varIdx[in.Var]
		local(func(d *state) {
			id := len(d.events)
			d.events = append(d.events, Event{ID: id, Proc: p, Idx: id, Kind: KindWrite, Var: v, ValW: val})
			d.writes[v] = append(d.writes[v], id)
		})
	case lang.OpCASVar:
		v := e.varIdx[in.Var]
		old := in.Old.Eval(env)
		newVal := in.Val.Eval(env)
		e.update(s, p, in, v, func(cur lang.Value) (lang.Value, bool) {
			if cur != old {
				return 0, false
			}
			return newVal, true
		})
	case lang.OpFenceOp:
		e.update(s, p, in, e.fenceVar, func(cur lang.Value) (lang.Value, bool) {
			return cur + 1, true
		})
	case lang.OpAssignReg:
		val := in.Val.Eval(env)
		ri := e.regIdx[p][in.Reg]
		local(func(d *state) { d.regs[p][ri] = val })
	case lang.OpNondetReg:
		ri := e.regIdx[p][in.Reg]
		for val := in.Lo; val <= in.Hi; val++ {
			val := val
			local(func(d *state) { d.regs[p][ri] = val })
		}
	case lang.OpAssumeCond:
		if in.Cond.Eval(env) != 0 {
			local(nil)
		}
		// A false assume parks the process; the enumeration simply never
		// advances it, and completion requires all processes terminated.
	case lang.OpAssertCond:
		// Assertions do not constrain the outcome set.
		local(nil)
	case lang.OpCJmp:
		d := s.clone()
		if in.Cond.Eval(env) != 0 {
			d.pcs[p] = in.Next
		} else {
			d.pcs[p] = in.Else
		}
		e.interleave(d)
	case lang.OpJmp:
		local(nil)
	default:
		panic(fmt.Sprintf("axiom: instruction %s not in the RA fragment", in.Op))
	}
}

// update issues an RMW event: it may read any already-issued write of v
// accepted by f, which returns the written value.
func (e *Enumerator) update(s *state, p int, in *lang.Instr, v int, f func(lang.Value) (lang.Value, bool)) {
	for _, w := range s.writes[v] {
		cur := s.events[w].ValW
		newVal, ok := f(cur)
		if !ok {
			continue
		}
		d := s.clone()
		d.pcs[p] = in.Next
		id := len(d.events)
		d.events = append(d.events, Event{ID: id, Proc: p, Idx: id, Kind: KindUpdate, Var: v, ValR: cur, ValW: newVal})
		d.rf[id] = w
		d.writes[v] = append(d.writes[v], id)
		e.interleave(d)
	}
}

// complete closes a finished (po, rf) candidate under every modification
// order and records the outcome if some order is RA-consistent.
func (e *Enumerator) complete(s *state) {
	out := e.render(s.regs)
	// The dedup key pairs the graph with the rendered outcome: the same
	// graph can carry different local register contents (e.g. nondet
	// choices that influenced no shared access), and distinct outcomes
	// must each get their consistency check.
	key := graphKey(s) + "|" + out
	if e.seenGraph[key] {
		return
	}
	e.seenGraph[key] = true
	if e.outcomes[out] {
		return // a consistent witness for this outcome already exists
	}
	x := &Execution{Events: s.events, RF: s.rf, MO: map[int][]int{}, NumProcs: len(e.prog.Procs)}
	if e.UseSC {
		if x.SCConsistent() {
			e.outcomes[out] = true
		}
		return
	}
	if e.searchMO(x, s, 0) {
		e.outcomes[out] = true
	}
}

// searchMO enumerates modification orders variable by variable; the
// init event stays first.
func (e *Enumerator) searchMO(x *Execution, s *state, v int) bool {
	if v == e.nvars {
		ok, _ := x.Consistent()
		return ok
	}
	writes := s.writes[v]
	rest := append([]int(nil), writes[1:]...)
	var perm func(i int) bool
	perm = func(i int) bool {
		if i == len(rest) {
			x.MO[v] = append([]int{writes[0]}, rest...)
			return e.searchMO(x, s, v+1)
		}
		for j := i; j < len(rest); j++ {
			rest[i], rest[j] = rest[j], rest[i]
			if perm(i + 1) {
				return true
			}
			rest[i], rest[j] = rest[j], rest[i]
		}
		return false
	}
	return perm(0)
}

// graphKey canonically encodes a (po, rf) candidate: per process the
// sequence of its events with rf sources named by (writer proc, count),
// so interleavings producing the same graph collapse.
func graphKey(s *state) string {
	var b strings.Builder
	perProc := map[int][]int{}
	for i := range s.events {
		ev := &s.events[i]
		perProc[ev.Proc] = append(perProc[ev.Proc], ev.ID)
	}
	procs := make([]int, 0, len(perProc))
	for p := range perProc {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	// Rename event ids: (proc, position-within-proc).
	rename := map[int]string{}
	for _, p := range procs {
		for i, id := range perProc[p] {
			rename[id] = fmt.Sprintf("%d:%d", p, i)
		}
	}
	for _, p := range procs {
		fmt.Fprintf(&b, "p%d[", p)
		for _, id := range perProc[p] {
			ev := &s.events[id]
			fmt.Fprintf(&b, "%d.%d.%d.%d", ev.Kind, ev.Var, ev.ValR, ev.ValW)
			if w, ok := s.rf[id]; ok {
				b.WriteString("<" + rename[w])
			}
			b.WriteByte(',')
		}
		b.WriteByte(']')
	}
	return b.String()
}
