package axiom

import (
	"strings"
	"testing"

	"ravbmc/internal/lang"
)

func TestEnumeratorRejectsLoops(t *testing.T) {
	p := lang.NewProgram("l", "x")
	p.AddProc("p0", "r").Add(lang.WhileS(lang.Eq(lang.R("r"), lang.C(0)), lang.ReadS("r", "x")))
	if _, err := NewEnumerator(lang.MustCompile(p), func([][]lang.Value) string { return "" }); err == nil {
		t.Error("loops must be rejected")
	}
}

func TestEnumeratorNondetAndBranches(t *testing.T) {
	p := lang.NewProgram("nb", "x")
	p.AddProc("p0", "r", "s").Add(
		lang.NondetS("r", 0, 2),
		lang.IfElseS(lang.Eq(lang.R("r"), lang.C(1)),
			[]lang.Stmt{lang.WriteC("x", 1)},
			[]lang.Stmt{lang.WriteC("x", 2)},
		),
		lang.ReadS("s", "x"),
	)
	e, err := NewEnumerator(lang.MustCompile(p), func(regs [][]lang.Value) string {
		var b strings.Builder
		b.WriteString("r=")
		b.WriteString(itoa(regs[0][0]))
		b.WriteString(";s=")
		b.WriteString(itoa(regs[0][1]))
		return b.String()
	})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Outcomes()
	// r=1 writes 1 and reads 1 (single process reads its own latest
	// write by coherence); r=0 and r=2 write 2 and read 2.
	want := []string{"r=0;s=2", "r=1;s=1", "r=2;s=2"}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing outcome %s (got %v)", w, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("outcomes = %v", got)
	}
}

func TestEnumeratorAssumePrunes(t *testing.T) {
	p := lang.NewProgram("ap", "x")
	p.AddProc("p0", "r").Add(
		lang.ReadS("r", "x"),
		lang.AssumeS(lang.Eq(lang.R("r"), lang.C(1))), // never true: only init 0 exists
	)
	e, err := NewEnumerator(lang.MustCompile(p), func(regs [][]lang.Value) string { return "done" })
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Outcomes(); len(got) != 0 {
		t.Errorf("assume(false) path completed: %v", got)
	}
}

func TestExecutionString(t *testing.T) {
	x := &Execution{
		Events: []Event{
			{ID: 0, Proc: -1, Kind: KindWrite, Var: 0},
			{ID: 1, Proc: 0, Kind: KindUpdate, Var: 0, ValR: 0, ValW: 1},
		},
		RF: map[int]int{1: 0},
		MO: map[int][]int{0: {0, 1}},
	}
	s := x.String()
	for _, frag := range []string{"e0", "U", "rf<-e0", "mo v0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("execution rendering missing %q:\n%s", frag, s)
		}
	}
	if ok, reason := x.Consistent(); !ok {
		t.Errorf("update chain must be consistent: %s", reason)
	}
}

func TestAtomicityViolationDetected(t *testing.T) {
	// Update at e2 reads e0 but a write e1 sits between them in mo.
	x := &Execution{
		Events: []Event{
			{ID: 0, Proc: -1, Kind: KindWrite, Var: 0, ValW: 0},
			{ID: 1, Proc: 0, Kind: KindWrite, Var: 0, ValW: 5},
			{ID: 2, Proc: 1, Kind: KindUpdate, Var: 0, ValR: 0, ValW: 1},
		},
		RF: map[int]int{2: 0},
		MO: map[int][]int{0: {0, 1, 2}},
	}
	ok, reason := x.Consistent()
	if ok {
		t.Error("atomicity violation accepted")
	}
	if !strings.Contains(reason, "atomicity") {
		t.Errorf("wrong reason: %s", reason)
	}
}

func itoa(v lang.Value) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func TestSCModeForbidsSB(t *testing.T) {
	p := lang.NewProgram("sb", "x", "y")
	p.AddProc("p0", "a").Add(lang.WriteC("x", 1), lang.ReadS("a", "y"))
	p.AddProc("p1", "b").Add(lang.WriteC("y", 1), lang.ReadS("b", "x"))
	e, err := NewEnumerator(lang.MustCompile(p), func(regs [][]lang.Value) string {
		return "a=" + itoa(regs[0][0]) + ";b=" + itoa(regs[1][0])
	})
	if err != nil {
		t.Fatal(err)
	}
	e.UseSC = true
	got := e.Outcomes()
	if got["a=0;b=0"] {
		t.Error("SC must forbid the SB weak outcome")
	}
	if len(got) != 3 {
		t.Errorf("SC SB outcomes = %v, want 3", got)
	}
}

func TestSCModeSubsetOfRA(t *testing.T) {
	// Every SC outcome is an RA outcome, on a handful of shapes.
	progs := []*lang.Program{}
	{
		p := lang.NewProgram("mp", "x", "y")
		p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
		p.AddProc("p1", "a", "b").Add(lang.ReadS("a", "y"), lang.ReadS("b", "x"))
		progs = append(progs, p)
	}
	{
		p := lang.NewProgram("corr", "x")
		p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("x", 2))
		p.AddProc("p1", "a", "b").Add(lang.ReadS("a", "x"), lang.ReadS("b", "x"))
		progs = append(progs, p)
	}
	for _, p := range progs {
		render := func(regs [][]lang.Value) string {
			s := ""
			for pi := range regs {
				for ri := range regs[pi] {
					s += itoa(regs[pi][ri]) + ","
				}
			}
			return s
		}
		ra, err := NewEnumerator(lang.MustCompile(p), render)
		if err != nil {
			t.Fatal(err)
		}
		raOut := ra.Outcomes()
		sc, err := NewEnumerator(lang.MustCompile(p), render)
		if err != nil {
			t.Fatal(err)
		}
		sc.UseSC = true
		scOut := sc.Outcomes()
		for o := range scOut {
			if !raOut[o] {
				t.Errorf("%s: SC outcome %s not an RA outcome", p.Name, o)
			}
		}
		if len(scOut) == 0 || len(scOut) > len(raOut) {
			t.Errorf("%s: |SC|=%d |RA|=%d", p.Name, len(scOut), len(raOut))
		}
	}
}
