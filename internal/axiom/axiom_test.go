package axiom

import (
	"fmt"
	"testing"

	"ravbmc/internal/lang"
	"ravbmc/internal/litmus"
	"ravbmc/internal/ra"
)

// outcomes computes the axiomatic outcome set over the given observer
// registers ("proc.reg=value;" tuples, matching the operational oracle).
func outcomes(t *testing.T, p *lang.Program, obs [][2]string) map[string]bool {
	t.Helper()
	cp := lang.MustCompile(p)
	procIdx := map[string]int{}
	regIdx := make([]map[string]int, len(cp.Procs))
	for i, pr := range cp.Procs {
		procIdx[pr.Name] = i
		regIdx[i] = map[string]int{}
		for j, r := range pr.Regs {
			regIdx[i][r] = j
		}
	}
	e, err := NewEnumerator(cp, func(regs [][]lang.Value) string {
		s := ""
		for _, o := range obs {
			pi := procIdx[o[0]]
			s += fmt.Sprintf("%s.%s=%d;", o[0], o[1], regs[pi][regIdx[pi][o[1]]])
		}
		return s
	})
	if err != nil {
		t.Fatal(err)
	}
	out := e.Outcomes()
	if e.Truncated {
		t.Fatalf("enumeration truncated")
	}
	return out
}

func TestAxiomaticMPForbidden(t *testing.T) {
	p := lang.NewProgram("mp", "x", "y")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("y", 1))
	p.AddProc("p1", "a", "b").Add(lang.ReadS("a", "y"), lang.ReadS("b", "x"))
	got := outcomes(t, p, [][2]string{{"p1", "a"}, {"p1", "b"}})
	if got["p1.a=1;p1.b=0;"] {
		t.Error("axiomatic model must forbid the MP weak outcome")
	}
	for _, want := range []string{"p1.a=0;p1.b=0;", "p1.a=0;p1.b=1;", "p1.a=1;p1.b=1;"} {
		if !got[want] {
			t.Errorf("missing outcome %s", want)
		}
	}
}

func TestAxiomaticSBAllowed(t *testing.T) {
	p := lang.NewProgram("sb", "x", "y")
	p.AddProc("p0", "a").Add(lang.WriteC("x", 1), lang.ReadS("a", "y"))
	p.AddProc("p1", "b").Add(lang.WriteC("y", 1), lang.ReadS("b", "x"))
	got := outcomes(t, p, [][2]string{{"p0", "a"}, {"p1", "b"}})
	if !got["p0.a=0;p1.b=0;"] {
		t.Error("axiomatic model must allow the SB weak outcome")
	}
	if len(got) != 4 {
		t.Errorf("SB should have 4 outcomes, got %v", got)
	}
}

func TestAxiomaticCoherence(t *testing.T) {
	p := lang.NewProgram("corr", "x")
	p.AddProc("p0").Add(lang.WriteC("x", 1), lang.WriteC("x", 2))
	p.AddProc("p1", "a", "b").Add(lang.ReadS("a", "x"), lang.ReadS("b", "x"))
	got := outcomes(t, p, [][2]string{{"p1", "a"}, {"p1", "b"}})
	if got["p1.a=2;p1.b=1;"] {
		t.Error("coherence violated: read 2 then 1")
	}
	if len(got) != 6 {
		t.Errorf("CoRR should have 6 outcomes, got %v", got)
	}
}

func TestAxiomaticCASExclusive(t *testing.T) {
	p := lang.NewProgram("cas", "x")
	p.AddProc("p0", "ok").Add(lang.CASS("x", lang.C(0), lang.C(1)), lang.AssignS("ok", lang.C(1)))
	p.AddProc("p1", "ok").Add(lang.CASS("x", lang.C(0), lang.C(2)), lang.AssignS("ok", lang.C(1)))
	// Completion requires both CAS to succeed; atomicity forbids both
	// reading the initial message, and the second can only match value 0
	// — so no execution completes and the outcome set is empty.
	got := outcomes(t, p, [][2]string{{"p0", "ok"}, {"p1", "ok"}})
	if len(got) != 0 {
		t.Errorf("two CAS(x,0,_) cannot both succeed; got %v", got)
	}
}

func TestAxiomaticFenceSB(t *testing.T) {
	p := lang.NewProgram("sbf", "x", "y")
	p.AddProc("p0", "a").Add(lang.WriteC("x", 1), lang.FenceS(), lang.ReadS("a", "y"))
	p.AddProc("p1", "b").Add(lang.WriteC("y", 1), lang.FenceS(), lang.ReadS("b", "x"))
	got := outcomes(t, p, [][2]string{{"p0", "a"}, {"p1", "b"}})
	if got["p0.a=0;p1.b=0;"] {
		t.Error("fenced SB must forbid the weak outcome")
	}
	if len(got) != 3 {
		t.Errorf("fenced SB should have 3 outcomes, got %v", got)
	}
}

// withoutAsserts makes outcome sets comparable between the two oracles
// (the operational explorer halts violating executions; the axiomatic
// enumerator has no notion of assertion).
func withoutAsserts(p *lang.Program) *lang.Program { return lang.StripAsserts(p) }

// allRegObs lists every (proc, reg) pair as observers.
func allRegObs(p *lang.Program) [][2]string {
	var obs [][2]string
	for _, pr := range p.Procs {
		for _, r := range pr.Regs {
			obs = append(obs, [2]string{pr.Name, r})
		}
	}
	return obs
}

// operationalOutcomes runs the internal/ra engine on the same program
// and renders outcomes identically.
func operationalOutcomes(t *testing.T, p *lang.Program, obs [][2]string) map[string]bool {
	t.Helper()
	sys := ra.NewSystem(lang.MustCompile(p))
	return sys.ReachableOutcomes(0, func(c *ra.Config) string {
		s := ""
		for _, o := range obs {
			s += fmt.Sprintf("%s.%s=%d;", o[0], o[1], sys.RegValue(c, o[0], o[1]))
		}
		return s
	})
}

// TestOraclesAgreeOnClassics: the axiomatic and operational oracles
// compute identical outcome sets on the classic litmus shapes.
func TestOraclesAgreeOnClassics(t *testing.T) {
	for _, tc := range litmus.Classic() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			p := withoutAsserts(tc.Prog)
			obs := allRegObs(p)
			ax := outcomes(t, p, obs)
			op := operationalOutcomes(t, p, obs)
			compareSets(t, tc.Name, ax, op)
		})
	}
}

// TestOraclesAgreeOnCorpus: differential test over a slice of the
// generated litmus corpus. The two implementations share no code, so
// agreement here is strong evidence both implement the RA model.
func TestOraclesAgreeOnCorpus(t *testing.T) {
	stride := 23
	if testing.Short() {
		stride = 173
	}
	corpus := litmus.Generated(2)
	n := 0
	for i := 0; i < len(corpus); i += stride {
		p := withoutAsserts(corpus[i].Prog)
		obs := allRegObs(p)
		ax := outcomes(t, p, obs)
		op := operationalOutcomes(t, p, obs)
		compareSets(t, corpus[i].Name, ax, op)
		n++
	}
	t.Logf("compared %d corpus programs", n)
}

func compareSets(t *testing.T, name string, ax, op map[string]bool) {
	t.Helper()
	for o := range ax {
		if !op[o] {
			t.Errorf("%s: axiomatic allows %s, operational forbids it", name, o)
		}
	}
	for o := range op {
		if !ax[o] {
			t.Errorf("%s: operational allows %s, axiomatic forbids it", name, o)
		}
	}
}

func TestConsistentRejectsMalformed(t *testing.T) {
	// Two events: init write of v0 and a read with a value mismatch.
	x := &Execution{
		Events: []Event{
			{ID: 0, Proc: -1, Kind: KindWrite, Var: 0, ValW: 0},
			{ID: 1, Proc: 0, Kind: KindRead, Var: 0, ValR: 7},
		},
		RF: map[int]int{1: 0},
		MO: map[int][]int{0: {0}},
	}
	if ok, _ := x.Consistent(); ok {
		t.Error("value-mismatched rf accepted")
	}
	x.Events[1].ValR = 0
	if ok, reason := x.Consistent(); !ok {
		t.Errorf("well-formed graph rejected: %s", reason)
	}
	// A read without an rf source.
	delete(x.RF, 1)
	if ok, _ := x.Consistent(); ok {
		t.Error("read without rf accepted")
	}
}
