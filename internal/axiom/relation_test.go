package axiom

import (
	"math/rand"
	"testing"
)

func randomRelation(rng *rand.Rand, n int, density float64) *relation {
	r := newRelation(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				r.set(i, j)
			}
		}
	}
	return r
}

func copyRelation(r *relation) *relation {
	c := newRelation(r.n)
	copy(c.adj, r.adj)
	return c
}

func equalRelation(a, b *relation) bool {
	if a.n != b.n {
		return false
	}
	for i := range a.adj {
		if a.adj[i] != b.adj[i] {
			return false
		}
	}
	return true
}

// TestClosureIdempotent (property): closing a closed relation changes
// nothing, and the closure contains the original.
func TestClosureIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(6)
		r := randomRelation(rng, n, 0.3)
		orig := copyRelation(r)
		r.closeTransitive()
		once := copyRelation(r)
		r.closeTransitive()
		if !equalRelation(once, r) {
			t.Fatal("closure not idempotent")
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if orig.has(i, j) && !r.has(i, j) {
					t.Fatal("closure lost an edge")
				}
			}
		}
	}
}

// TestClosureIsTransitive (property): the result contains every
// two-step composition.
func TestClosureIsTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(6)
		r := randomRelation(rng, n, 0.25)
		r.closeTransitive()
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				if !r.has(i, k) {
					continue
				}
				for j := 0; j < n; j++ {
					if r.has(k, j) && !r.has(i, j) {
						t.Fatalf("closure misses %d->%d via %d", i, j, k)
					}
				}
			}
		}
	}
}

// TestComposeAgainstDefinition (property): compose matches the naive
// definition.
func TestComposeAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(5)
		a := randomRelation(rng, n, 0.3)
		b := randomRelation(rng, n, 0.3)
		c := a.compose(b)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := false
				for k := 0; k < n; k++ {
					if a.has(i, k) && b.has(k, j) {
						want = true
					}
				}
				if c.has(i, j) != want {
					t.Fatalf("compose wrong at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestUnionAndIrreflexive(t *testing.T) {
	a := newRelation(3)
	a.set(0, 1)
	b := newRelation(3)
	b.set(1, 2)
	a.union(b)
	if !a.has(0, 1) || !a.has(1, 2) {
		t.Error("union lost edges")
	}
	if !a.irreflexive() {
		t.Error("no self loops yet")
	}
	a.set(2, 2)
	if a.irreflexive() {
		t.Error("self loop missed")
	}
}
