package axiom

// SCConsistent checks sequential consistency of an execution graph: some
// total order of all events extends po such that every read reads the
// latest preceding write of its variable. Only po and rf are consulted
// (the modification order of an SC execution is the scheduling order
// itself). It gives the repository a second, declarative implementation
// of SC, used to differential-test the operational SC engine.
func (x *Execution) SCConsistent() bool {
	n := len(x.Events)
	// Build po successors: events of the same process in index order;
	// init events precede everything.
	pred := make([]int, n) // count of unscheduled po-predecessors
	succ := make([][]int, n)
	byProc := map[int][]int{}
	for i := range x.Events {
		e := &x.Events[i]
		byProc[e.Proc] = append(byProc[e.Proc], e.ID)
	}
	addEdge := func(a, b int) {
		succ[a] = append(succ[a], b)
		pred[b]++
	}
	for p, ids := range byProc {
		if p == -1 {
			continue
		}
		for i := 0; i+1 < len(ids); i++ {
			addEdge(ids[i], ids[i+1])
		}
		if len(ids) > 0 {
			for _, initID := range byProc[-1] {
				addEdge(initID, ids[0])
			}
		}
	}

	scheduled := make([]bool, n)
	lastWrite := map[int]int{} // var -> event id of latest scheduled write

	var rec func(done int) bool
	rec = func(done int) bool {
		if done == n {
			return true
		}
		for id := 0; id < n; id++ {
			if scheduled[id] || pred[id] > 0 {
				continue
			}
			e := &x.Events[id]
			// A read must read the latest scheduled write of its
			// variable (init events are writes scheduled first).
			if e.IsRead() && e.Proc != -1 {
				w, ok := lastWrite[e.Var]
				if !ok || x.RF[id] != w {
					continue
				}
			}
			// Schedule id.
			scheduled[id] = true
			savedWrite, hadWrite := 0, false
			if e.IsWrite() {
				savedWrite, hadWrite = lastWrite[e.Var], func() bool { _, ok := lastWrite[e.Var]; return ok }()
				lastWrite[e.Var] = id
			}
			for _, s := range succ[id] {
				pred[s]--
			}
			if rec(done + 1) {
				return true
			}
			for _, s := range succ[id] {
				pred[s]++
			}
			if e.IsWrite() {
				if hadWrite {
					lastWrite[e.Var] = savedWrite
				} else {
					delete(lastWrite, e.Var)
				}
			}
			scheduled[id] = false
		}
		return false
	}
	return rec(0)
}
