// Package axiom implements the declarative (axiomatic) presentation of
// the release-acquire memory model, in the style of herd's RC11 axioms
// restricted to the RA fragment — the presentation the paper's litmus
// experiment checks VBMC against. An execution is a graph of events
// with program order (po), reads-from (rf) and per-variable modification
// order (mo); it is RA-consistent iff
//
//	COHERENCE  hb;eco?  is irreflexive, where hb = (po ∪ rf)⁺ and
//	           eco = (rf ∪ mo ∪ fr)⁺  (fr = rf⁻¹;mo)
//	ATOMICITY  for every update u: fr(u);mo(u) has no intermediate
//	           write, i.e. u reads mo-immediately before itself
//
// (In the RA fragment every read is an acquire and every write a
// release, so rf edges synchronise unconditionally and hb needs no
// sw-composition beyond po ∪ rf.)
//
// The package provides an execution enumerator for loop-free programs
// and an outcome oracle, used as an independent cross-check of the
// operational semantics in internal/ra: the two implementations share
// no code, so agreement on thousands of generated programs is strong
// evidence both are the RA model.
package axiom

import (
	"fmt"
	"sort"
	"strings"

	"ravbmc/internal/lang"
)

// EventKind classifies an event.
type EventKind int

// Event kinds: plain read, plain write, update (CAS/fence RMW).
const (
	KindRead EventKind = iota
	KindWrite
	KindUpdate
)

// Event is a node of an execution graph. Init events (one per variable)
// have Proc == -1.
type Event struct {
	ID   int
	Proc int // -1 for initialisation events
	Idx  int // position within the process (po order)
	Kind EventKind
	Var  int
	// ValR is the value read (Read/Update); ValW the value written
	// (Write/Update).
	ValR lang.Value
	ValW lang.Value
}

// IsWrite reports whether the event writes (Write or Update).
func (e *Event) IsWrite() bool { return e.Kind != KindRead }

// IsRead reports whether the event reads (Read or Update).
func (e *Event) IsRead() bool { return e.Kind != KindWrite }

// Execution is a candidate execution graph: events plus rf and mo.
type Execution struct {
	Events []Event
	// RF maps a reading event id to the write event id it reads from.
	RF map[int]int
	// MO lists, per variable, the write event ids in modification order
	// (the init event first).
	MO map[int][]int
	// NumProcs is the process count of the source program.
	NumProcs int
}

// String renders the execution for debugging.
func (x *Execution) String() string {
	var b strings.Builder
	for i := range x.Events {
		e := &x.Events[i]
		kind := map[EventKind]string{KindRead: "R", KindWrite: "W", KindUpdate: "U"}[e.Kind]
		fmt.Fprintf(&b, "e%-2d p%d %s v%d", e.ID, e.Proc, kind, e.Var)
		if e.IsRead() {
			fmt.Fprintf(&b, " r=%d", e.ValR)
		}
		if e.IsWrite() {
			fmt.Fprintf(&b, " w=%d", e.ValW)
		}
		if w, ok := x.RF[e.ID]; ok {
			fmt.Fprintf(&b, " rf<-e%d", w)
		}
		b.WriteByte('\n')
	}
	var vars []int
	for v := range x.MO {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		fmt.Fprintf(&b, "mo v%d: %v\n", v, x.MO[v])
	}
	return b.String()
}

// relation is a dense boolean adjacency matrix over event ids.
type relation struct {
	n   int
	adj []bool
}

func newRelation(n int) *relation { return &relation{n: n, adj: make([]bool, n*n)} }

func (r *relation) set(a, b int)      { r.adj[a*r.n+b] = true }
func (r *relation) has(a, b int) bool { return r.adj[a*r.n+b] }

// closeTransitive computes the transitive closure in place
// (Floyd–Warshall on booleans; executions are litmus-sized).
func (r *relation) closeTransitive() {
	n := r.n
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !r.adj[i*n+k] {
				continue
			}
			row := r.adj[i*n : i*n+n]
			krow := r.adj[k*n : k*n+n]
			for j := 0; j < n; j++ {
				if krow[j] {
					row[j] = true
				}
			}
		}
	}
}

// union merges o into r.
func (r *relation) union(o *relation) {
	for i := range r.adj {
		if o.adj[i] {
			r.adj[i] = true
		}
	}
}

// irreflexive reports whether no event relates to itself.
func (r *relation) irreflexive() bool {
	for i := 0; i < r.n; i++ {
		if r.adj[i*r.n+i] {
			return false
		}
	}
	return true
}

// compose returns r;o.
func (r *relation) compose(o *relation) *relation {
	n := r.n
	out := newRelation(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if !r.adj[i*n+k] {
				continue
			}
			krow := o.adj[k*n : k*n+n]
			orow := out.adj[i*n : i*n+n]
			for j := 0; j < n; j++ {
				if krow[j] {
					orow[j] = true
				}
			}
		}
	}
	return out
}
