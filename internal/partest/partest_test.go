package partest

import (
	"testing"
	"time"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/ra"
	"ravbmc/internal/sc"
)

// TestWidths checks the width set always contains the one-worker
// anchor and honours the RAVBMC_TEST_JOBS override without
// duplicates.
func TestWidths(t *testing.T) {
	t.Setenv("RAVBMC_TEST_JOBS", "7")
	ws := Widths()
	seen := map[int]bool{}
	for _, w := range ws {
		if w < 1 {
			t.Errorf("width %d < 1", w)
		}
		if seen[w] {
			t.Errorf("duplicate width %d in %v", w, ws)
		}
		seen[w] = true
	}
	if !seen[1] || !seen[7] {
		t.Errorf("widths %v missing anchor 1 or override 7", ws)
	}
}

// TestClassicParityRA sweeps the classic litmus corpus through the RA
// explorer in census mode under several option shapes — unbounded,
// view-bounded, view+context-bounded, exact dedup — asserting the
// parallel pool reproduces the serial run bit-for-bit at every width:
// verdict, state count, transition count, violation census, and
// witness bytes.
func TestClassicParityRA(t *testing.T) {
	variants := []struct {
		name string
		opts ra.Options
	}{
		{"unbounded", ra.Options{ViewBound: -1}},
		{"k2", ra.Options{ViewBound: 2}},
		{"k2ctx4", ra.Options{ViewBound: 2, ContextBound: 4}},
		{"exact", ra.Options{ViewBound: -1, ExactDedup: true}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for _, c := range Classics() {
				Check(t, c, RAAllWidths(v.opts, 0))
			}
		})
	}
}

// TestClassicParitySC is the SC-checker counterpart: full census
// (CensusViolations) under unbounded, context-bounded, reversed
// process order, and exact-dedup options.
func TestClassicParitySC(t *testing.T) {
	variants := []struct {
		name string
		opts sc.Options
	}{
		{"unbounded", sc.Options{CensusViolations: true}},
		{"ctx4", sc.Options{MaxContexts: 4, CensusViolations: true}},
		{"ctx4rev", sc.Options{MaxContexts: 4, ReverseProcs: true, CensusViolations: true}},
		{"exact", sc.Options{ExactDedup: true, CensusViolations: true}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for _, c := range Classics() {
				Check(t, c, SCAllWidths(v.opts, 0))
			}
		})
	}
}

// TestStopModeVerdictParity covers the first-violation-wins mode:
// which violation a parallel race reports is schedule-dependent by
// design, but the verdict (and witness presence) must still agree
// with serial at every width.
func TestStopModeVerdictParity(t *testing.T) {
	for _, c := range Classics() {
		Check(t, c, RAAllWidths(ra.Options{ViewBound: -1, StopOnViolation: true}, 0))
		Check(t, c, SCAllWidths(sc.Options{}, 0))
	}
}

// TestGeneratedParity draws a seeded 200-program sample from the
// systematic litmus generators (two-thread 3-op and three-thread 2-op
// shapes) and runs the full census differential on each.
func TestGeneratedParity(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	for _, c := range GeneratedSample(1, n) {
		Check(t, c, RAAllWidths(ra.Options{ViewBound: -1}, 0))
		Check(t, c, SCAllWidths(sc.Options{CensusViolations: true}, 0))
	}
}

// TestBenchmarkParity runs the differential on unrolled mutex
// benchmarks — real frontiers with thousands of states, where stealing
// actually redistributes work. Bounded exploration (ViewBound for RA,
// MaxContexts for SC) keeps the sweep inside test time.
func TestBenchmarkParity(t *testing.T) {
	raOpts := ra.Options{ViewBound: 2}
	scOpts := sc.Options{MaxContexts: 4, CensusViolations: true}
	for _, c := range Benchmarks() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			for _, w := range []int{2, 4} {
				if d := RADiff(c.Prog, raOpts, w, 0); d != "" {
					t.Errorf("%s ra: %s", c.Name, d)
				}
				if d := SCDiff(c.Prog, scOpts, w, 0); d != "" {
					t.Errorf("%s sc: %s", c.Name, d)
				}
			}
		})
	}
}

// TestStealSeedFuzz perturbs the pool's steal-victim order across
// seeds: the census must be identical to serial under every schedule,
// which is exactly the order-independence claim of the dedup
// discipline and the minimal-fingerprint witness rule.
func TestStealSeedFuzz(t *testing.T) {
	cases := Classics()[:6]
	cases = append(cases, Benchmarks("peterson_0(2)")...)
	for _, c := range cases {
		for seed := int64(0); seed < 8; seed++ {
			if d := RADiff(c.Prog, ra.Options{ViewBound: 2}, 4, seed); d != "" {
				t.Errorf("%s ra: %s", c.Name, d)
			}
			if d := SCDiff(c.Prog, sc.Options{MaxContexts: 4, CensusViolations: true}, 4, seed); d != "" {
				t.Errorf("%s sc: %s", c.Name, d)
			}
		}
	}
}

// TestCorePipelineParity checks the full VBMC pipeline (probes,
// restart ladder, deepening, witness lift/replay) reaches the same
// verdict with parallel inner searches, and that parallel Unsafe
// verdicts still carry a replay-validated witness.
func TestCorePipelineParity(t *testing.T) {
	cases := []struct {
		name string
		prog *lang.Program
		opts core.Options
	}{}
	names := []string{"peterson_0(2)", "peterson_4(2)"}
	if testing.Short() {
		// The fenced (SAFE) instance explores its whole bounded space
		// and dominates the -race leg's wall clock; the buggy instance
		// still exercises probes, the ladder, and witness replay.
		names = names[:1]
	}
	for _, n := range names {
		p, err := benchmarks.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, struct {
			name string
			prog *lang.Program
			opts core.Options
		}{n, p, core.Options{K: 2, Unroll: 2}})
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for _, w := range []int{2, 4} {
				if d := CoreDiff(c.prog, c.opts, w, 0); d != "" {
					t.Errorf("%s: %s", c.name, d)
				}
			}
		})
	}
}

// TestRaceSoak drives parallel explorations of a three-process
// Peterson instance while cancelling the context mid-run and, in a
// second round, letting a short deadline expire mid-steal. The
// functional assertions are deliberately weak (the run returns
// promptly and reports TimedOut); under -race this is the test that
// shakes out unsynchronized access between workers, the census
// aggregator and the telemetry flusher.
func TestRaceSoak(t *testing.T) {
	p, err := benchmarks.ByName("peterson_0(3)")
	if err != nil {
		t.Fatal(err)
	}
	p = lang.Unroll(p, 2)
	opts := ra.Options{ViewBound: 3}
	for round := 0; round < 4; round++ {
		res, err := Soak(p, opts, 4, 5*time.Millisecond, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.TimedOut && !res.Exhausted && !res.Violation {
			t.Errorf("cancel round %d: neither timed out nor finished: %+v", round, res)
		}
	}
	for round := 0; round < 4; round++ {
		res, err := Soak(p, opts, 4, 0, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if !res.TimedOut && !res.Exhausted && !res.Violation {
			t.Errorf("deadline round %d: neither timed out nor finished: %+v", round, res)
		}
	}
}

// TestShrinkReporting exercises the harness's own failure path: a
// deliberately broken diff (flagging any program with at least two
// processes) must shrink to a minimal program and report through the
// Reporter interface rather than pass silently.
func TestShrinkReporting(t *testing.T) {
	rec := &recordingReporter{}
	c := Classics()[0]
	badDiff := func(p *lang.Program) string {
		if len(p.Procs) >= 2 {
			return "injected mismatch"
		}
		return ""
	}
	Check(rec, c, badDiff)
	if len(rec.msgs) != 1 {
		t.Fatalf("expected exactly one reported failure, got %d", len(rec.msgs))
	}
	min, ok := rec.msgs[0].args[len(rec.msgs[0].args)-1].(*lang.Program)
	if !ok {
		t.Fatalf("last Errorf arg is %T, want *lang.Program", rec.msgs[0].args[len(rec.msgs[0].args)-1])
	}
	if len(min.Procs) != 2 {
		t.Errorf("shrunk program has %d procs, want the minimal 2", len(min.Procs))
	}
	for _, pr := range min.Procs {
		if len(pr.Body) != 0 {
			t.Errorf("shrunk program still has statements: proc body len %d", len(pr.Body))
		}
	}
}

type reportedMsg struct {
	format string
	args   []any
}

type recordingReporter struct {
	msgs []reportedMsg
}

func (r *recordingReporter) Helper() {}
func (r *recordingReporter) Errorf(format string, args ...any) {
	r.msgs = append(r.msgs, reportedMsg{format, args})
}
