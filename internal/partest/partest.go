// Package partest is the serial/parallel differential test harness for
// the search engines (internal/ra, internal/sc) and the VBMC pipeline
// (internal/core). It runs the same verification query serially and at
// several work-stealing pool widths and asserts the results agree:
// identical verdicts everywhere; in census mode additionally identical
// state counts, transition counts and byte-identical witnesses (the
// engines' order-independent dedup discipline and minimal-fingerprint
// witness tie-break make full census results schedule-invariant — see
// DESIGN.md). On a mismatch the harness shrinks the program to a
// 1-minimal failing witness before reporting, so a parity bug arrives
// as a few-line program instead of a corpus index.
package partest

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"time"

	"ravbmc/internal/benchmarks"
	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/litmus"
	"ravbmc/internal/ra"
	"ravbmc/internal/sc"
)

// Widths returns the parallel pool widths under differential test:
// 1 (a one-worker pool, the anchor closest to serial), 2, 4, the CPU
// count, and the RAVBMC_TEST_JOBS override if set — deduplicated. CI
// sets RAVBMC_TEST_JOBS=8 so wide pools are exercised even on
// single-core runners.
func Widths() []int {
	ws := []int{1, 2, 4, runtime.NumCPU()}
	if s := os.Getenv("RAVBMC_TEST_JOBS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			ws = append(ws, n)
		}
	}
	seen := map[int]bool{}
	out := ws[:0]
	for _, w := range ws {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// Case is one corpus program under differential test.
type Case struct {
	Name string
	Prog *lang.Program
}

// Classics returns every classic litmus shape as a case.
func Classics() []Case {
	var cs []Case
	for _, t := range litmus.Classic() {
		cs = append(cs, Case{Name: "classic/" + t.Name, Prog: t.Prog})
	}
	return cs
}

// GeneratedSample returns n programs drawn without replacement from the
// systematically generated litmus corpora (two-thread 3-op and
// three-thread 2-op), using a seeded permutation so every run of the
// harness tests the same sample.
func GeneratedSample(seed int64, n int) []Case {
	all := litmus.Generated(3)
	all = append(all, litmus.GeneratedThreads(3, 2)...)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(all))
	if n > len(perm) {
		n = len(perm)
	}
	var cs []Case
	for _, i := range perm[:n] {
		cs = append(cs, Case{Name: "gen/" + all[i].Name, Prog: all[i].Prog})
	}
	return cs
}

// Benchmarks returns small instances of the paper's mutex benchmarks,
// loop-unrolled with L=2 so both engines face a finite space: big
// enough to have real frontiers worth stealing, small enough for a
// multi-width sweep in test time.
func Benchmarks(names ...string) []Case {
	if len(names) == 0 {
		names = []string{"peterson_0(2)", "peterson_4(2)", "dekker_0", "bakery_3(2)"}
	}
	var cs []Case
	for _, name := range names {
		p, err := benchmarks.ByName(name)
		if err != nil {
			panic(err) // a typo in the fixed list above, not a runtime condition
		}
		cs = append(cs, Case{Name: "bench/" + name, Prog: lang.Unroll(p, 2)})
	}
	return cs
}

// RADiff explores prog serially and with a workers-wide pool and
// returns a description of the first disagreement, or "" when the
// results match. In census mode (StopOnViolation=false) everything is
// compared, witness bytes included; in stop mode only the verdict and
// witness presence are (which violation a stopped parallel search
// reports is schedule-dependent by design).
func RADiff(prog *lang.Program, opts ra.Options, workers int, seed int64) string {
	cp, err := lang.Compile(prog)
	if err != nil {
		return "" // a shrink candidate left the RA fragment; not a parity issue
	}
	sys := ra.NewSystem(cp)
	sopts := opts
	sopts.Workers = 0
	ser := sys.Explore(sopts)
	popts := opts
	popts.Workers = workers
	popts.StealSeed = seed
	par := sys.Explore(popts)
	if ser.TimedOut || par.TimedOut {
		return fmt.Sprintf("timed out (serial=%v parallel=%v): parity unverifiable", ser.TimedOut, par.TimedOut)
	}
	if ser.Violation != par.Violation {
		return fmt.Sprintf("workers=%d seed=%d: Violation %v (serial) vs %v (parallel)", workers, seed, ser.Violation, par.Violation)
	}
	if ser.TargetReached != par.TargetReached {
		return fmt.Sprintf("workers=%d seed=%d: TargetReached %v vs %v", workers, seed, ser.TargetReached, par.TargetReached)
	}
	if ser.Violation && (ser.Trace == nil) != (par.Trace == nil) {
		return fmt.Sprintf("workers=%d seed=%d: witness presence %v vs %v", workers, seed, ser.Trace != nil, par.Trace != nil)
	}
	if opts.StopOnViolation {
		return ""
	}
	if ser.States != par.States || ser.Transitions != par.Transitions {
		return fmt.Sprintf("workers=%d seed=%d: states/transitions %d/%d (serial) vs %d/%d (parallel)",
			workers, seed, ser.States, ser.Transitions, par.States, par.Transitions)
	}
	if ser.Violations != par.Violations {
		return fmt.Sprintf("workers=%d seed=%d: Violations %d vs %d", workers, seed, ser.Violations, par.Violations)
	}
	if ser.Exhausted != par.Exhausted {
		return fmt.Sprintf("workers=%d seed=%d: Exhausted %v vs %v", workers, seed, ser.Exhausted, par.Exhausted)
	}
	if ser.PeakMessages != par.PeakMessages {
		return fmt.Sprintf("workers=%d seed=%d: PeakMessages %d vs %d", workers, seed, ser.PeakMessages, par.PeakMessages)
	}
	st, pt := "<none>", "<none>"
	if ser.Trace != nil {
		st = ser.Trace.String()
	}
	if par.Trace != nil {
		pt = par.Trace.String()
	}
	if st != pt {
		return fmt.Sprintf("workers=%d seed=%d: witness differs\nserial:\n%s\nparallel:\n%s", workers, seed, st, pt)
	}
	return ""
}

// SCDiff is RADiff for the context-bounded SC checker. Census mode is
// sc.Options.CensusViolations.
func SCDiff(prog *lang.Program, opts sc.Options, workers int, seed int64) string {
	cp, err := lang.Compile(prog)
	if err != nil {
		return ""
	}
	sys := sc.NewSystem(cp)
	sopts := opts
	sopts.Workers = 0
	ser := sys.Check(sopts)
	popts := opts
	popts.Workers = workers
	popts.StealSeed = seed
	par := sys.Check(popts)
	if ser.TimedOut || par.TimedOut {
		return fmt.Sprintf("timed out (serial=%v parallel=%v): parity unverifiable", ser.TimedOut, par.TimedOut)
	}
	if ser.Violation != par.Violation {
		return fmt.Sprintf("workers=%d seed=%d: Violation %v (serial) vs %v (parallel)", workers, seed, ser.Violation, par.Violation)
	}
	if ser.TargetReached != par.TargetReached {
		return fmt.Sprintf("workers=%d seed=%d: TargetReached %v vs %v", workers, seed, ser.TargetReached, par.TargetReached)
	}
	if ser.Violation && (ser.Trace == nil) != (par.Trace == nil) {
		return fmt.Sprintf("workers=%d seed=%d: witness presence %v vs %v", workers, seed, ser.Trace != nil, par.Trace != nil)
	}
	if !opts.CensusViolations {
		return ""
	}
	if ser.States != par.States || ser.Transitions != par.Transitions {
		return fmt.Sprintf("workers=%d seed=%d: states/transitions %d/%d (serial) vs %d/%d (parallel)",
			workers, seed, ser.States, ser.Transitions, par.States, par.Transitions)
	}
	if ser.Violations != par.Violations {
		return fmt.Sprintf("workers=%d seed=%d: Violations %d vs %d", workers, seed, ser.Violations, par.Violations)
	}
	if ser.Exhausted != par.Exhausted {
		return fmt.Sprintf("workers=%d seed=%d: Exhausted %v vs %v", workers, seed, ser.Exhausted, par.Exhausted)
	}
	st, pt := "<none>", "<none>"
	if ser.Trace != nil {
		st = ser.Trace.String()
	}
	if par.Trace != nil {
		pt = par.Trace.String()
	}
	if st != pt {
		return fmt.Sprintf("workers=%d seed=%d: witness differs\nserial:\n%s\nparallel:\n%s", workers, seed, st, pt)
	}
	return ""
}

// CoreDiff runs the full VBMC pipeline serially and with parallel
// inner searches and compares the verdict (core's restart ladder and
// probe tiers make intermediate counts inherently budget-dependent, so
// the contract at this layer is verdict equality plus a validated
// witness).
func CoreDiff(prog *lang.Program, opts core.Options, workers int, seed int64) string {
	sopts := opts
	sopts.Workers = 0
	ser, err := core.Run(prog, sopts)
	if err != nil {
		return ""
	}
	popts := opts
	popts.Workers = workers
	popts.StealSeed = seed
	par, perr := core.Run(prog, popts)
	if perr != nil {
		return fmt.Sprintf("workers=%d: parallel run failed: %v", workers, perr)
	}
	if ser.Verdict != par.Verdict {
		return fmt.Sprintf("workers=%d seed=%d: verdict %v (serial) vs %v (parallel)", workers, seed, ser.Verdict, par.Verdict)
	}
	if par.Verdict == core.Unsafe && !par.WitnessValidated {
		return fmt.Sprintf("workers=%d seed=%d: parallel witness failed validation: %s", workers, seed, par.WitnessErr)
	}
	return ""
}

// SCReduceDiff checks the source-DPOR reduction against the unreduced
// search, both serial and both at an unbounded context bound (the
// reduction's own precondition). The contract mirrors the serial/
// parallel one: identical Violation and Exhausted, a witness whenever
// the search stops on one, and — since the reduced search explores a
// representative subset — a state count never above the unreduced run's.
func SCReduceDiff(prog *lang.Program, opts sc.Options) string {
	cp, err := lang.Compile(prog)
	if err != nil {
		return "" // a shrink candidate left the RA fragment; not a parity issue
	}
	sys := sc.NewSystem(cp)
	fopts := opts
	fopts.Reduce = false
	fopts.MaxContexts = 0
	fopts.Workers = 0
	full := sys.Check(fopts)
	ropts := opts
	ropts.Reduce = true
	ropts.MaxContexts = 0
	ropts.Workers = 0
	red := sys.Check(ropts)
	if full.TimedOut || red.TimedOut {
		return fmt.Sprintf("timed out (full=%v reduced=%v): parity unverifiable", full.TimedOut, red.TimedOut)
	}
	if red.Violation != full.Violation {
		return fmt.Sprintf("reduce: Violation %v (reduced) vs %v (unreduced)", red.Violation, full.Violation)
	}
	if red.Exhausted != full.Exhausted {
		return fmt.Sprintf("reduce: Exhausted %v (reduced) vs %v (unreduced)", red.Exhausted, full.Exhausted)
	}
	if red.Violation && red.Trace == nil {
		return "reduce: violation without a witness"
	}
	// State counts are comparable only when both searches ran to
	// completion: a stop-mode violation ends each exploration at an
	// order-dependent prefix, and the reduced order may legitimately
	// reach its first violation later.
	if red.Exhausted && full.Exhausted && red.States > full.States {
		return fmt.Sprintf("reduce: reduced search visited MORE states (%d) than unreduced (%d)", red.States, full.States)
	}
	return ""
}

// CoreReduceDiff runs the full VBMC pipeline with and without the
// reduction and compares verdicts; an UNSAFE from the reduced pipeline
// must still carry a replay-validated witness. (State counts are not
// compared at this layer: the unreduced pipeline climbs the context
// ladder, the reduced one runs a single unbounded search.)
func CoreReduceDiff(prog *lang.Program, opts core.Options) string {
	fopts := opts
	fopts.Reduce = false
	full, err := core.Run(prog, fopts)
	if err != nil {
		return ""
	}
	ropts := opts
	ropts.Reduce = true
	red, rerr := core.Run(prog, ropts)
	if rerr != nil {
		return fmt.Sprintf("reduce: reduced run failed: %v", rerr)
	}
	if red.Verdict != full.Verdict {
		return fmt.Sprintf("reduce: verdict %v (reduced) vs %v (unreduced)", red.Verdict, full.Verdict)
	}
	if red.Verdict == core.Unsafe && !red.WitnessValidated {
		return fmt.Sprintf("reduce: reduced witness failed validation: %s", red.WitnessErr)
	}
	return ""
}

// Diff is a single-program differential check: it returns the first
// mismatch across all pool widths, or "".
type Diff func(*lang.Program) string

// SCReduce builds a Diff running SCReduceDiff under opts.
func SCReduce(opts sc.Options) Diff {
	return func(p *lang.Program) (d string) {
		defer func() {
			if r := recover(); r != nil {
				d = fmt.Sprintf("panic: %v", r)
			}
		}()
		return SCReduceDiff(p, opts)
	}
}

// CoreReduce builds a Diff running CoreReduceDiff under opts.
func CoreReduce(opts core.Options) Diff {
	return func(p *lang.Program) (d string) {
		defer func() {
			if r := recover(); r != nil {
				d = fmt.Sprintf("panic: %v", r)
			}
		}()
		return CoreReduceDiff(p, opts)
	}
}

// RAAllWidths builds a Diff running RADiff at every width.
func RAAllWidths(opts ra.Options, seed int64) Diff {
	return func(p *lang.Program) (d string) {
		defer func() {
			if r := recover(); r != nil {
				d = fmt.Sprintf("panic: %v", r)
			}
		}()
		for _, w := range Widths() {
			if d := RADiff(p, opts, w, seed); d != "" {
				return d
			}
		}
		return ""
	}
}

// SCAllWidths builds a Diff running SCDiff at every width.
func SCAllWidths(opts sc.Options, seed int64) Diff {
	return func(p *lang.Program) (d string) {
		defer func() {
			if r := recover(); r != nil {
				d = fmt.Sprintf("panic: %v", r)
			}
		}()
		for _, w := range Widths() {
			if d := SCDiff(p, opts, w, seed); d != "" {
				return d
			}
		}
		return ""
	}
}

// Reporter receives harness failures; *testing.T satisfies it.
type Reporter interface {
	Helper()
	Errorf(format string, args ...any)
}

// Check runs diff on the case and, on a mismatch, shrinks the program
// to a 1-minimal failing witness before reporting — the parity bug
// arrives as a few-line program, not a corpus index.
func Check(t Reporter, c Case, diff Diff) {
	t.Helper()
	d := diff(c.Prog)
	if d == "" {
		return
	}
	min := lang.Shrink(c.Prog, func(q *lang.Program) bool { return diff(q) != "" })
	t.Errorf("%s: serial/parallel mismatch: %s\nminimal failing program:\n%s", c.Name, d, min)
}

// Soak drives one parallel exploration of prog while cancelling the
// context and expiring the deadline mid-run, for the -race soak: the
// assertions are only that the run returns within budget and reports
// TimedOut sanely; the race detector does the real checking.
func Soak(prog *lang.Program, opts ra.Options, workers int, cancelAfter, deadlineAfter time.Duration) (ra.Result, error) {
	cp, err := lang.Compile(prog)
	if err != nil {
		return ra.Result{}, err
	}
	sys := ra.NewSystem(cp)
	opts.Workers = workers
	if deadlineAfter > 0 {
		opts.Deadline = time.Now().Add(deadlineAfter)
	}
	if cancelAfter > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), cancelAfter)
		defer cancel()
		opts.Ctx = ctx
	}
	return sys.Explore(opts), nil
}
