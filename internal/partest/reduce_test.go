package partest

import (
	"testing"

	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/sc"
)

// compileCase compiles a corpus case for direct System construction.
func compileCase(c Case) (*lang.CompiledProgram, error) {
	return lang.Compile(c.Prog)
}

// TestClassicReduceParitySC sweeps the classic litmus corpus through
// the source-DPOR differential in stop and census modes, with and
// without exact dedup: the reduced search must reproduce the unreduced
// unbounded verdict on every shape, never visiting more states.
func TestClassicReduceParitySC(t *testing.T) {
	variants := []struct {
		name string
		opts sc.Options
	}{
		{"stop", sc.Options{}},
		{"census", sc.Options{CensusViolations: true}},
		{"exact", sc.Options{ExactDedup: true, CensusViolations: true}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for _, c := range Classics() {
				Check(t, c, SCReduce(v.opts))
			}
		})
	}
}

// TestGeneratedReduceParity draws the same seeded sample as the
// serial/parallel harness and runs the reduction differential on each
// program — the breadth leg of the DPOR parity gate.
func TestGeneratedReduceParity(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	for _, c := range GeneratedSample(1, n) {
		Check(t, c, SCReduce(sc.Options{CensusViolations: true}))
	}
}

// TestBenchmarkReduceParity runs the reduction differential on the
// unrolled mutex benchmarks — the spaces where the reduction earns its
// keep — and requires a strict state-count win on at least one of them.
func TestBenchmarkReduceParity(t *testing.T) {
	strict := false
	for _, c := range Benchmarks() {
		if d := SCReduceDiff(c.Prog, sc.Options{CensusViolations: true}); d != "" {
			t.Errorf("%s: %s", c.Name, d)
			continue
		}
		full := scCensus(t, c, false)
		red := scCensus(t, c, true)
		if red < full {
			strict = true
			t.Logf("%s: %d -> %d states (%.2fx)", c.Name, full, red, float64(full)/float64(red))
		}
	}
	if !strict {
		t.Error("reduction never strictly shrank a benchmark census")
	}
}

// scCensus returns the census state count of one configuration.
func scCensus(t *testing.T, c Case, reduce bool) int {
	t.Helper()
	cp, err := compileCase(c)
	if err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	res := sc.NewSystem(cp).Check(sc.Options{CensusViolations: true, Reduce: reduce})
	return res.States
}

// TestCoreReduceParity runs the full-pipeline differential: the VBMC
// verdict with the reduced SC backend must equal the unreduced one on
// the classics and on safe and buggy mutex instances, with every UNSAFE
// witness replay-validated.
func TestCoreReduceParity(t *testing.T) {
	cases := Classics()
	if testing.Short() {
		cases = cases[:6]
	}
	for _, c := range cases {
		Check(t, c, CoreReduce(core.Options{K: 2}))
	}
	for _, c := range Benchmarks("peterson_0(2)", "peterson_4(2)") {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			if d := CoreReduceDiff(c.Prog, core.Options{K: 2, Unroll: 2}); d != "" {
				t.Errorf("%s: %s", c.Name, d)
			}
		})
	}
}

// TestReduceWithWorkersParity: Reduce composed with Workers races the
// reduced serial search against the unreduced parallel one inside
// sc.Check; whichever side wins, the verdict must match the plain
// serial baseline.
func TestReduceWithWorkersParity(t *testing.T) {
	for _, c := range append(Classics()[:6], Benchmarks("peterson_0(2)")...) {
		cp, err := compileCase(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		sys := sc.NewSystem(cp)
		base := sys.Check(sc.Options{})
		for _, w := range []int{2, 4} {
			got := sys.Check(sc.Options{Reduce: true, Workers: w})
			if got.Violation != base.Violation {
				t.Errorf("%s workers=%d: raced Violation %v vs %v", c.Name, w, got.Violation, base.Violation)
			}
			if got.Violation && got.Trace == nil {
				t.Errorf("%s workers=%d: raced violation without witness", c.Name, w)
			}
		}
	}
}
