// Package version identifies the build: the module version and the VCS
// revision stamped by the Go toolchain (runtime/debug.ReadBuildInfo).
//
// The string is embedded in the content-addressed cache key
// (internal/cache) and in exported witness headers (internal/trace), so
// results computed by one binary are never served back by a binary with
// different engine code: any rebuild from a different revision changes
// the version string, which changes every cache key, which makes all
// old entries unreachable (and the disk store skips them on load).
package version

import (
	"runtime/debug"
	"strings"
	"sync"
)

var once = sync.OnceValue(compute)

// String returns the build identity, e.g. "devel+4f9c1a2b" or
// "v1.2.0+4f9c1a2b.dirty". It is computed once; repeated calls are
// cheap and always equal within one process.
func String() string { return once() }

func compute() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	ver := info.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = ".dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		// Test binaries and builds outside a VCS checkout carry no stamp;
		// fall back to the toolchain version so the string still pins the
		// engine build environment.
		return ver + "+" + strings.TrimPrefix(info.GoVersion, "go")
	}
	return ver + "+" + rev + dirty
}
