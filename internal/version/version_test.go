package version

import (
	"strings"
	"testing"
)

func TestStringNonEmptyAndStable(t *testing.T) {
	v := String()
	if v == "" {
		t.Fatal("empty version string")
	}
	if v != String() {
		t.Fatalf("version string not stable: %q vs %q", v, String())
	}
	if strings.ContainsAny(v, " \t\n") {
		t.Fatalf("version string contains whitespace: %q", v)
	}
}
