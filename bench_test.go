// Benchmarks regenerating the paper's evaluation (one per table plus
// the litmus experiment), micro-benchmarks of the individual engines,
// and ablation benchmarks for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem -timeout 0
//
// Table benches use the Quick configuration (smaller thread sweeps,
// short per-tool timeouts) so a full -bench=. pass stays tractable; the
// full paper-sized sweeps are produced by cmd/ratables.
package ravbmc_test

import (
	"fmt"
	"testing"
	"time"

	"ravbmc"
	"ravbmc/internal/benchmarks"
	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/lcs"
	"ravbmc/internal/pcp"
	"ravbmc/internal/ra"
	"ravbmc/internal/sc"
	"ravbmc/internal/smc"
	"ravbmc/internal/tables"
)

func quickCfg() tables.Config {
	return tables.Config{Quick: true, Timeout: 10 * time.Second}
}

func benchTable(b *testing.B, gen func(tables.Config) tables.Table) {
	cfg := quickCfg()
	for i := 0; i < b.N; i++ {
		t := gen(cfg)
		if i == 0 {
			b.Log("\n" + t.Render())
		}
	}
}

// BenchmarkTable1 regenerates Table 1: unfenced mutex protocols
// (UNSAFE under RA), K=2, L=2, all four tools.
func BenchmarkTable1(b *testing.B) { benchTable(b, tables.Table1) }

// BenchmarkTable2 regenerates Table 2: all-but-one-fenced Peterson and
// Szymanski with growing thread counts.
func BenchmarkTable2(b *testing.B) { benchTable(b, tables.Table2) }

// BenchmarkTable3 regenerates Table 3: fenced Peterson, bug in the
// first thread.
func BenchmarkTable3(b *testing.B) { benchTable(b, tables.Table3) }

// BenchmarkTable4 regenerates Table 4: fenced Peterson, bug in the last
// thread.
func BenchmarkTable4(b *testing.B) { benchTable(b, tables.Table4) }

// BenchmarkTable5 regenerates Table 5: fenced Szymanski, bug in a fixed
// thread.
func BenchmarkTable5(b *testing.B) { benchTable(b, tables.Table5) }

// BenchmarkTable6 regenerates Table 6: SAFE fenced protocols, L=1.
func BenchmarkTable6(b *testing.B) { benchTable(b, tables.Table6) }

// BenchmarkTable7 regenerates Table 7: SAFE fenced protocols, L=2.
func BenchmarkTable7(b *testing.B) { benchTable(b, tables.Table7) }

// BenchmarkTable8 regenerates Table 8: SAFE fenced protocols, L=4.
func BenchmarkTable8(b *testing.B) { benchTable(b, tables.Table8) }

// BenchmarkLitmusSuite regenerates the litmus experiment: VBMC vs the
// RA oracle over the classic shapes plus a slice of the generated
// corpus (full corpus: cmd/ratables -table litmus -stride 1).
func BenchmarkLitmusSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum := tables.LitmusSweep(3, 101, 5, 1)
		if sum.Agree != sum.Total {
			b.Fatalf("litmus disagreement: %s", sum.Render())
		}
		if i == 0 {
			b.Log("\n" + sum.Render())
		}
	}
}

// BenchmarkPCPReduction measures the Theorem 4.1 pipeline: build the
// Fig. 3 program for a solvable instance and find the terminating run.
func BenchmarkPCPReduction(b *testing.B) {
	ins := pcp.Instance{U: []string{"a"}, V: []string{"a"}}
	for i := 0; i < b.N; i++ {
		prog, err := ins.Reduction()
		if err != nil {
			b.Fatal(err)
		}
		sys := ra.NewSystem(lang.MustCompile(prog))
		res := sys.Explore(ra.Options{
			ViewBound: -1, MaxSteps: 120, MaxStates: 1_000_000,
			TargetLabels: pcp.TargetLabels(),
		})
		if !res.TargetReached {
			b.Fatal("solvable instance must reach term")
		}
	}
}

// BenchmarkLCS measures the Theorem 4.3 substrate: WSTS backward
// reachability on lossy channel systems, plus the RA lossy-channel
// encoding explored under RA.
func BenchmarkLCS(b *testing.B) {
	b.Run("backward", func(b *testing.B) {
		s := &lcs.System{
			Init:     "s",
			States:   []string{"s", "r1", "r2", "r3", "done"},
			Channels: []string{"c"},
			Rules: []lcs.Rule{
				{From: "s", Op: lcs.Send, Ch: "c", Sym: 'a', To: "s"},
				{From: "s", Op: lcs.Send, Ch: "c", Sym: 'b', To: "s"},
				{From: "s", Op: lcs.Recv, Ch: "c", Sym: 'a', To: "r1"},
				{From: "r1", Op: lcs.Recv, Ch: "c", Sym: 'b', To: "r2"},
				{From: "r2", Op: lcs.Recv, Ch: "c", Sym: 'a', To: "r3"},
				{From: "r3", Op: lcs.Nop, To: "done"},
			},
		}
		for i := 0; i < b.N; i++ {
			ok, err := s.Reachable("done")
			if err != nil || !ok {
				b.Fatalf("reachable=%v err=%v", ok, err)
			}
		}
	})
	b.Run("ra-encoding", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := lcs.SequencedChannelProgram("abcd", "bd")
			sys := ra.NewSystem(lang.MustCompile(p))
			res := sys.Explore(ra.Options{
				ViewBound:    -1,
				TargetLabels: map[string]string{"consumer": "got"},
			})
			if !res.TargetReached {
				b.Fatal("subword must be receivable")
			}
		}
	})
}

// Micro-benchmarks of the individual engines.

// BenchmarkTranslate measures the code-to-code translation [[.]]_K.
func BenchmarkTranslate(b *testing.B) {
	prog, err := benchmarks.ByName("peterson_0(3)")
	if err != nil {
		b.Fatal(err)
	}
	unrolled := lang.Unroll(prog, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Translate(unrolled, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRAExplorer measures the exhaustive RA explorer on the MP
// litmus program.
func BenchmarkRAExplorer(b *testing.B) {
	prog := ravbmc.MustParse(`
program mp
var x y
proc p0
  x = 1
  y = 1
end
proc p1
  reg a b
  $a = y
  $b = x
end
`)
	cp := lang.MustCompile(prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := ra.NewSystem(cp)
		res := sys.Explore(ra.Options{ViewBound: -1, StopOnViolation: true})
		if res.Violation {
			b.Fatal("MP has no assertions")
		}
	}
}

// BenchmarkSCChecker measures the context-bounded SC backend on the
// translated sim_dekker program.
func BenchmarkSCChecker(b *testing.B) {
	prog, err := benchmarks.ByName("sim_dekker")
	if err != nil {
		b.Fatal(err)
	}
	translated, err := core.Translate(lang.Unroll(prog, 2), 2)
	if err != nil {
		b.Fatal(err)
	}
	cp := lang.MustCompile(translated)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sc.NewSystem(cp).Check(sc.Options{MaxContexts: 4})
		if !res.Violation {
			b.Fatal("sim_dekker is unsafe under RA")
		}
	}
}

// BenchmarkSMCAlgorithms compares the three stateless baselines on the
// unfenced 2-thread Peterson bug.
func BenchmarkSMCAlgorithms(b *testing.B) {
	prog, err := benchmarks.ByName("peterson_0")
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range []smc.Algorithm{smc.AlgorithmTracer, smc.AlgorithmCDS, smc.AlgorithmRCMC} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := smc.Check(prog, smc.Options{Algorithm: alg, Unroll: 2})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Violation {
					b.Fatal("peterson_0 is unsafe under RA")
				}
			}
		})
	}
}

// BenchmarkDedupModes compares the fingerprinted visited set against
// exact string keys on fixed exhaustive workloads: the RA explorer on a
// fenced Peterson (safe, so the whole bounded space is swept) and the
// SC backend on the translated program. states/s is reported so
// scripts/bench_snapshot.sh can record the serial dedup throughput;
// B/op (run with -benchmem) exposes the bytes-per-state difference
// between the two modes. The smc pair measures the opt-in StateDedup
// pruning against the stateless default on the same workload.
func BenchmarkDedupModes(b *testing.B) {
	prog, err := benchmarks.ByName("peterson_4")
	if err != nil {
		b.Fatal(err)
	}
	unrolled := lang.Unroll(prog, 2)
	cp := lang.MustCompile(unrolled)
	for _, exact := range []bool{false, true} {
		mode := map[bool]string{false: "fingerprint", true: "exact"}[exact]
		b.Run("ra/"+mode, func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				sys := ra.NewSystem(cp)
				res := sys.Explore(ra.Options{ViewBound: 2, StopOnViolation: true, ExactDedup: exact})
				if res.Violation || !res.Exhausted {
					b.Fatalf("peterson_4 sweep: %+v", res)
				}
				states = res.States
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		})
	}
	translated, err := core.Translate(unrolled, 2)
	if err != nil {
		b.Fatal(err)
	}
	tcp := lang.MustCompile(translated)
	for _, exact := range []bool{false, true} {
		mode := map[bool]string{false: "fingerprint", true: "exact"}[exact]
		b.Run("sc/"+mode, func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				res := sc.NewSystem(tcp).Check(sc.Options{MaxContexts: 4, ExactDedup: exact})
				if res.Violation || !res.Exhausted {
					b.Fatalf("translated peterson_4 sweep: %+v", res)
				}
				states = res.States
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		})
	}
	for _, dedup := range []bool{false, true} {
		mode := map[bool]string{false: "stateless", true: "state-dedup"}[dedup]
		b.Run("smc/"+mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := smc.Check(prog, smc.Options{
					Algorithm: smc.AlgorithmTracer, Unroll: 2, StateDedup: dedup,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Violation || !res.Exhausted {
					b.Fatalf("peterson_4 smc sweep: %+v", res)
				}
			}
		})
	}
}

// Ablation benchmarks for the design choices in DESIGN.md.

// BenchmarkAblationContextBound compares the paper's K+n context bound
// against an unbounded backend on the same query (both are sound and
// complete for the K-bounded problem; the bound is a performance
// device).
func BenchmarkAblationContextBound(b *testing.B) {
	prog, err := benchmarks.ByName("peterson_0")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		ctx  int
	}{{"K+n", 0}, {"unbounded", -1}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(prog, core.Options{K: 2, Unroll: 2, MaxContexts: tc.ctx})
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != core.Unsafe {
					b.Fatalf("got %v", res.Verdict)
				}
			}
		})
	}
}

// BenchmarkAblationViewBound sweeps K on the same program: the cost of
// raising the view budget, and the K at which the bug appears.
func BenchmarkAblationViewBound(b *testing.B) {
	prog, err := benchmarks.ByName("sim_dekker")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{0, 1, 2, 3} {
		k := k
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(prog, core.Options{K: k, Unroll: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGranularity compares the instruction-level baseline
// (CDSChecker-style) against the macro-step one (Tracer-style) on a
// SAFE program, isolating the effect of the macro-step reduction.
func BenchmarkAblationGranularity(b *testing.B) {
	prog := ravbmc.MustParse(`
program safe3
var x y
proc p0
  x = 1
  x = 2
end
proc p1
  reg a
  $a = x
  $a = y
end
proc p2
  y = 1
end
`)
	for _, alg := range []smc.Algorithm{smc.AlgorithmCDS, smc.AlgorithmTracer} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := smc.Check(prog, smc.Options{Algorithm: alg})
				if err != nil {
					b.Fatal(err)
				}
				if res.Violation {
					b.Fatal("program has no assertions")
				}
			}
		})
	}
}
