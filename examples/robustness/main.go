// Robustness analysis: which programs behave identically under RA and
// SC? Non-robust programs exhibit weak behaviours and need fences (or
// RMWs); robust ones are already correct as written. This example runs
// the robustness checker on litmus shapes and on the simplified Dekker
// protocol, and shows the weak outcomes that witness non-robustness.
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"ravbmc"
	"ravbmc/internal/benchmarks"
)

func main() {
	fmt.Println("Litmus shapes:")
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"store buffering (SB)", `
var x y
proc p0
  reg a
  x = 1
  $a = y
end
proc p1
  reg b
  y = 1
  $b = x
end`},
		{"message passing (MP)", `
var x y
proc p0
  x = 1
  y = 1
end
proc p1
  reg a b
  $a = y
  $b = x
end`},
		{"SB with fences", `
var x y
proc p0
  reg a
  x = 1
  fence
  $a = y
end
proc p1
  reg b
  y = 1
  fence
  $b = x
end`},
	} {
		p, err := ravbmc.Parse(tc.src)
		if err != nil {
			log.Fatal(err)
		}
		report(tc.name, p, 0)
	}

	fmt.Println("\nProtocols (unrolled, L=1):")
	for _, name := range []string{"sim_dekker", "sim_dekker_4"} {
		p, err := benchmarks.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		report(name, p, 1)
	}
}

func report(name string, p *ravbmc.Program, unroll int) {
	res, err := ravbmc.CheckRobustness(p, unroll)
	if err != nil {
		log.Fatal(err)
	}
	if res.Robust {
		fmt.Printf("  %-22s robust (%d outcomes under both models)\n", name, res.SCOutcomes)
		return
	}
	fmt.Printf("  %-22s NOT robust: %d RA outcomes vs %d SC outcomes\n",
		name, res.RAOutcomes, res.SCOutcomes)
	for i, o := range res.WeakOutcomes {
		if i == 3 {
			fmt.Printf("      ... and %d more weak outcomes\n", len(res.WeakOutcomes)-3)
			break
		}
		fmt.Printf("      weak: %s\n", o)
	}
}
