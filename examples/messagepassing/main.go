// Message passing under release-acquire: this example exercises the RA
// semantics engine directly, demonstrating which weak behaviours RA
// allows (store buffering, IRIW) and which it forbids (message passing,
// coherence violations), and how the view-switch bound carves out an
// under-approximation.
//
//	go run ./examples/messagepassing
package main

import (
	"fmt"
	"log"

	"ravbmc"
	"ravbmc/internal/litmus"
)

func main() {
	fmt.Println("Classic litmus shapes under RA (oracle = exhaustive explorer):")
	fmt.Println()
	for _, tc := range litmus.Classic() {
		weak := litmus.Oracle(tc)
		status := "forbidden"
		if weak {
			status = "allowed  "
		}
		fmt.Printf("  %-10s weak outcome %s (literature agrees: %v)\n",
			tc.Name, status, weak == tc.Unsafe)
	}

	// The message-passing guarantee, step by step: p1 reading the flag
	// y=1 acquires p0's view, so the subsequent read of x cannot be
	// stale. We check it at increasing view bounds with the explorer.
	fmt.Println("\nmessage passing at bounded view switches:")
	mp := ravbmc.MustParse(`
program mp
var x y
proc p0
  x = 1
  y = 1
end
proc p1
  reg a b
  $a = y
  $b = x
  assert(!($a == 1 && $b == 0))
end
`)
	for k := 0; k <= 2; k++ {
		res, err := ravbmc.ExploreRA(mp, ravbmc.ExploreOptions{ViewBound: k, StopOnViolation: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  K=%d: violation=%v states=%d (MP is RA-safe at every bound)\n",
			k, res.Violation, res.States)
	}

	// Store buffering IS observable — and needs exactly one view switch
	// to see the other process's write... none at all, in fact: reading
	// the stale initial value requires no switch.
	fmt.Println("\nstore buffering (stale reads need no view switch):")
	sb := ravbmc.MustParse(`
program sb
var x y
proc p0
  reg a
  x = 1
  $a = y
  assert($a == 1)
end
proc p1
  y = 1
end
`)
	res, err := ravbmc.ExploreRA(sb, ravbmc.ExploreOptions{ViewBound: 0, StopOnViolation: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  K=0: violation=%v (p0 reads y=0 although p1 wrote 1)\n", res.Violation)
}
