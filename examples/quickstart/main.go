// Quickstart: write a small concurrent program in the textual syntax,
// check it under the RA semantics with VBMC, and print the verdict and
// counterexample.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ravbmc"
)

// The store-buffering idiom: under sequential consistency at least one
// of the two processes must see the other's write, so the assertion in
// the checker process holds. Under release-acquire both processes may
// read the stale initial value — a genuine weak-memory bug that VBMC
// finds with a single view switch.
const src = `
program quickstart
var x y outa outb flaga flagb

proc p0
  reg a
  x = 1
  $a = y
  outa = $a
  flaga = 1
end

proc p1
  reg b
  y = 1
  $b = x
  outb = $b
  flagb = 1
end

proc checker
  reg fa fb va vb
  $fa = flaga
  assume($fa == 1)
  $fb = flagb
  assume($fb == 1)
  $va = outa
  $vb = outb
  assert($va == 1 || $vb == 1)
end
`

func main() {
	prog, err := ravbmc.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	for k := 0; k <= 3; k++ {
		res, err := ravbmc.VBMC(prog, ravbmc.VBMCOptions{K: k})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("K=%d: %s (%d states explored)\n", k, res.Verdict, res.States)
		if res.Verdict == ravbmc.Unsafe {
			fmt.Println("\ncounterexample (translated-program events):")
			fmt.Print(res.Trace)
			break
		}
	}

	// The same program with fences after the writes is safe at any K:
	// fences are RMWs on a distinguished variable, which totally order
	// the two processes' accesses.
	fenced, err := ravbmc.Parse(insertFences(src))
	if err != nil {
		log.Fatal(err)
	}
	res, err := ravbmc.VBMC(fenced, ravbmc.VBMCOptions{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith fences, K=2: %s\n", res.Verdict)
}

func insertFences(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += line + "\n"
		if line == "  x = 1" || line == "  y = 1" {
			out += "  fence\n"
		}
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}
