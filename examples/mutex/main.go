// Mutual-exclusion bug hunting, the paper's headline use case: the
// unfenced Peterson protocol is correct under SC but broken under RA.
// VBMC finds the weak-memory bug with two view switches; the fenced
// version is safe; and the stateless baselines find the same bug by
// direct enumeration.
//
//	go run ./examples/mutex
package main

import (
	"fmt"
	"log"
	"time"

	"ravbmc"
	"ravbmc/internal/benchmarks"
)

func main() {
	unfenced, err := benchmarks.ByName("peterson_0")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Peterson (2 threads), unfenced, under VBMC with rising K:")
	for k := 0; ; k++ {
		start := time.Now()
		res, err := ravbmc.VBMC(unfenced, ravbmc.VBMCOptions{K: k, Unroll: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  K=%d: %-6s  (%6d states, %v)\n", k, res.Verdict, res.States,
			time.Since(start).Round(time.Millisecond))
		if res.Verdict == ravbmc.Unsafe {
			fmt.Printf("  -> the bug manifests with %d view switches; witness:\n", k)
			printHead(res, 14)
			break
		}
		if k >= 4 {
			break
		}
	}

	fenced, err := benchmarks.ByName("peterson_4")
	if err != nil {
		log.Fatal(err)
	}
	res, err := ravbmc.VBMC(fenced, ravbmc.VBMCOptions{K: 2, Unroll: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPeterson fenced (peterson_4), K=2 L=1: %s\n", res.Verdict)

	fmt.Println("\nThe stateless baselines on the unfenced version:")
	for _, alg := range []ravbmc.SMCAlgorithm{
		ravbmc.AlgorithmTracer, ravbmc.AlgorithmCDS, ravbmc.AlgorithmRCMC,
	} {
		start := time.Now()
		sres, err := ravbmc.SMC(unfenced, ravbmc.SMCOptions{
			Algorithm: alg, Unroll: 2, Timeout: 30 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "safe"
		if sres.Violation {
			verdict = "UNSAFE"
		}
		fmt.Printf("  %-7s %-7s (%8d transitions, %v)\n", alg, verdict,
			sres.Transitions, time.Since(start).Round(time.Millisecond))
	}
}

func printHead(res ravbmc.VBMCResult, n int) {
	if res.Trace == nil {
		return
	}
	events := res.Trace.Events
	for i, e := range events {
		if i >= n {
			fmt.Printf("     ... (%d more events)\n", len(events)-n)
			return
		}
		fmt.Printf("     %-4s %-9s %s\n", e.Proc, e.Kind, e.Text())
	}
}
