// Undecidability in action (paper Theorem 4.1): encode Post's
// Correspondence Problem into a four-process RA program. The encoding
// works because CAS and the causality of message views force the
// verifier processes to consume every written symbol in order — while
// plain RA reads may skip messages, CAS on each message's t+1 slot
// cannot.
//
//	go run ./examples/pcp
package main

import (
	"fmt"
	"log"

	"ravbmc/internal/lang"
	"ravbmc/internal/pcp"
	"ravbmc/internal/ra"
)

func main() {
	solvable := pcp.Instance{U: []string{"a"}, V: []string{"a"}}
	unsolvable := pcp.Instance{U: []string{"ab"}, V: []string{"ba"}}

	for _, ins := range []pcp.Instance{solvable, unsolvable} {
		fmt.Printf("instance U=%v V=%v\n", ins.U, ins.V)

		if sol, ok := ins.Solve(4); ok {
			u, v, _ := ins.Concat(sol)
			fmt.Printf("  brute force: solvable with %v (%s == %s)\n", sol, u, v)
		} else {
			fmt.Println("  brute force: no solution up to length 4")
		}

		prog, err := ins.Reduction()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  reduction: %d processes, %d statements\n",
			len(prog.Procs), prog.CountStmts())

		sys := ra.NewSystem(lang.MustCompile(prog))
		res := sys.Explore(ra.Options{
			ViewBound:    -1,
			MaxSteps:     120,
			MaxStates:    500_000,
			TargetLabels: pcp.TargetLabels(),
		})
		if res.TargetReached {
			fmt.Printf("  RA explorer: all processes reach term (%d states) -> solvable\n", res.States)
			fmt.Printf("  witness has %d events, %d view switches\n",
				res.Trace.Len(), res.Trace.ViewSwitches())
		} else {
			fmt.Printf("  RA explorer: term not reached within bounds (%d states)\n", res.States)
		}
		fmt.Println()
	}

	fmt.Println("Theorem 4.1: because PCP is undecidable and the reduction is")
	fmt.Println("effective, control-state reachability under RA (with CAS) is")
	fmt.Println("undecidable — which is why VBMC bounds view switches instead.")
}
