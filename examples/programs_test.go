// Package examples_test checks that the sample programs shipped for the
// CLI parse, validate, and have the verdicts their comments promise.
package examples_test

import (
	"os"
	"path/filepath"
	"testing"

	"ravbmc"
)

func load(t *testing.T, name string) *ravbmc.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("programs", name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ravbmc.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p
}

func TestSampleProgramsVerdicts(t *testing.T) {
	cases := []struct {
		file    string
		k       int
		verdict ravbmc.Verdict
	}{
		{"sb.ra", 2, ravbmc.Unsafe},
		{"mp.ra", 3, ravbmc.Safe},
		{"spinlock.ra", 2, ravbmc.Safe},
	}
	for _, c := range cases {
		p := load(t, c.file)
		res, err := ravbmc.VBMC(p, ravbmc.VBMCOptions{K: c.k, Unroll: 2})
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		if res.Verdict != c.verdict {
			t.Errorf("%s at K=%d: got %v, want %v", c.file, c.k, res.Verdict, c.verdict)
		}
	}
}

func TestSampleProgramsRoundTrip(t *testing.T) {
	for _, f := range []string{"sb.ra", "mp.ra", "spinlock.ra"} {
		p := load(t, f)
		if _, err := ravbmc.Parse(p.String()); err != nil {
			t.Errorf("%s: printed form does not reparse: %v", f, err)
		}
	}
}
