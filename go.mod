module ravbmc

go 1.24
