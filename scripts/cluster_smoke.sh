#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of a 3-node vbmcd cluster.
#
# Starts one solo daemon and a 3-node cluster (static -peers list,
# ephemeral ports) and runs the quick Tables 1-2 sweep through
# POST /v1/batch, asserting:
#
#   1. the cold cluster pass produces byte-identical verdict rows
#      (index, status, verdict, witness SHA-256) to the solo daemon —
#      routing never changes answers. State counts are excluded: the
#      vbmc driver deepens its probes against the wall clock, so the
#      count at first violation is timing-dependent on any topology;
#   2. requests were actually forwarded: the ravbmc_cluster_*
#      families are present and summed forwards are > 0;
#   3. a SIGTERM delivered to one member mid-sweep (a parked long
#      verification keeps it draining) does not break the sweep: the
#      warm pass through the surviving coordinator still exits 0 and
#      stays byte-identical with the solo baseline;
#   4. the warm pass fills from the draining owner's still-warm cache:
#      the coordinator's ravbmc_cluster_peer_fill_hits_total is > 0 and
#      the victim's ravbmc_cluster_peer_fill_served_total is > 0;
#   5. the SIGTERM'd node drains cleanly: exit 0 and "drained, bye".
#
# Usage:
#   scripts/cluster_smoke.sh
#   SMOKE_BUILD_FLAGS=-race scripts/cluster_smoke.sh   # CI: race-enabled daemons
#   SMOKE_TIMEOUT=60 scripts/cluster_smoke.sh          # per-item budget (s)
set -euo pipefail
cd "$(dirname "$0")/.."

req_timeout="${SMOKE_TIMEOUT:-30}"
tmp="$(mktemp -d)"
pids=()
trap 'for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$tmp"' EXIT

# shellcheck disable=SC2086 — SMOKE_BUILD_FLAGS is intentionally word-split
go build ${SMOKE_BUILD_FLAGS:-} -o "$tmp/vbmcd" ./cmd/vbmcd

# The static -peers list needs every address up front, so grab free
# ports first (held together, then released — the race window between
# release and bind is acceptable for a smoke test).
cat >"$tmp/freeports.go" <<'EOF'
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
)

func main() {
	n, _ := strconv.Atoi(os.Args[1])
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lns[i] = ln
		fmt.Println(ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range lns {
		ln.Close()
	}
}
EOF
mapfile -t ports < <(go run "$tmp/freeports.go" 3)
[ "${#ports[@]}" -eq 3 ] || { echo "FAIL: could not allocate ports" >&2; exit 1; }

names=(n1 n2 n3)
bases=() npids=()
peerlist="n1=http://127.0.0.1:${ports[0]},n2=http://127.0.0.1:${ports[1]},n3=http://127.0.0.1:${ports[2]}"

# start_node NAME ARGS... — launch a daemon, wait for its address line,
# append to bases/npids/pids.
start_node() {
  local name="$1"
  shift
  "$tmp/vbmcd" "$@" >"$tmp/$name.out" 2>"$tmp/$name.err" &
  local pid=$!
  pids+=("$pid")
  local base=""
  for _ in $(seq 1 100); do
    base="$(sed -n 's/^vbmcd listening on //p' "$tmp/$name.out")"
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$tmp/$name.err" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$base" ] || { echo "FAIL: $name never printed its address" >&2; exit 1; }
  bases+=("$base")
  npids+=("$pid")
  echo "$name up at $base (pid $pid)" >&2
}

# The quick Tables 1-2 rows: "bench k l" triples at the paper's bounds.
sweep_rows() {
  cat <<'EOF'
dekker 2 2
peterson_0 2 2
sim_dekker 2 2
peterson_1(3) 4 2
szymanski_1(3) 2 2
szymanski_1(4) 2 2
EOF
}

batch_payload() {
  sweep_rows | jq -Rs --argjson t "$req_timeout" '
    {items: [split("\n")[] | select(length > 0) | split(" ") |
      {bench: .[0], mode: "vbmc", k: (.[1] | tonumber),
       unroll: (.[2] | tonumber), timeout_seconds: $t}]}'
}

# run_batch BASE OUT.tsv RESP.json — POST the sweep as one batch and
# extract one stable row per item. Node, timing and state-count fields
# are excluded so solo and cluster passes compare byte for byte.
run_batch() {
  batch_payload | curl -fsS -X POST "$1/v1/batch" \
    -H 'Content-Type: application/json' -d @- >"$3"
  jq -e '.ok == true' "$3" >/dev/null || {
    echo "FAIL: batch against $1 not ok:" >&2
    jq '{ok, failed, items: [.items[] | select(.status != 200)]}' "$3" >&2
    exit 1
  }
  jq -r '.items | sort_by(.index)[] |
    [.index, .status, .verdict // "", (.witness_sha256 // "")] | @tsv' \
    "$3" >"$2"
}

scrape() { # scrape BASE METRIC — counter value, 0 if absent
  curl -fsS "$1/metrics" | awk -v m="$2" '$1 == m { print $2; found = 1 } END { if (!found) print 0 }'
}

# --- solo baseline -----------------------------------------------------
start_node solo -addr 127.0.0.1:0
solo_base="${bases[0]}"
run_batch "$solo_base" "$tmp/solo.tsv" "$tmp/solo.json"
grep -q 'UNSAFE' "$tmp/solo.tsv" || { echo "FAIL: sweep found no UNSAFE verdicts" >&2; exit 1; }
kill "${npids[0]}" 2>/dev/null && wait "${npids[0]}" 2>/dev/null || true
bases=() npids=()
echo "solo baseline: $(wc -l <"$tmp/solo.tsv") rows" >&2

# --- cold cluster pass -------------------------------------------------
for i in 0 1 2; do
  start_node "${names[$i]}" -addr "127.0.0.1:${ports[$i]}" \
    -node-id "${names[$i]}" -peers "$peerlist" \
    -drain-grace 120s -probe-interval 500ms
done
n1_base="${bases[0]}"

run_batch "$n1_base" "$tmp/cold.tsv" "$tmp/cold.json"
if ! cmp -s "$tmp/solo.tsv" "$tmp/cold.tsv"; then
  echo "FAIL: cluster cold pass disagrees with the solo daemon:" >&2
  diff "$tmp/solo.tsv" "$tmp/cold.tsv" >&2 || true
  exit 1
fi
forwards=0
for b in "${bases[@]}"; do
  forwards=$((forwards + $(scrape "$b" ravbmc_cluster_forwards_total)))
done
[ "$forwards" -gt 0 ] || { echo "FAIL: no request was forwarded in the cold pass" >&2; exit 1; }
echo "cold pass byte-identical with solo ($forwards forwards)" >&2

# --- SIGTERM one member mid-sweep, then the warm pass ------------------
# The victim is a node that served at least one sweep item and is not
# the coordinator, read off the cold pass's per-item node stamps.
victim="$(jq -r '[.items[].node] | map(select(. != "n1")) | .[0] // empty' "$tmp/cold.json")"
[ -n "$victim" ] || { echo "FAIL: every sweep item landed on the coordinator" >&2; exit 1; }
vi=0
for i in 1 2; do [ "${names[$i]}" = "$victim" ] && vi=$i; done
victim_base="${bases[$vi]}"
victim_pid="${npids[$vi]}"
echo "victim: $victim at $victim_base" >&2

# Park a long verification on the victim (the forwarded header pins it
# there) so the SIGTERM leaves it alive-but-draining: still answering
# cache reads while /readyz says 503.
curl -fsS -X POST "$victim_base/v1/verify" -H 'Content-Type: application/json' \
  -H 'X-Ravbmc-Forwarded-From: smoke' \
  -d '{"bench":"peterson_1","mode":"vbmc","k":5,"unroll":6,"timeout_seconds":120}' \
  >/dev/null 2>&1 &
park_pid=$!
for _ in $(seq 1 50); do
  [ "$(scrape "$victim_base" ravbmc_serve_active)" -gt 0 ] && break
  sleep 0.1
done
kill -TERM "$victim_pid"
for _ in $(seq 1 50); do
  code="$(curl -s -o /dev/null -w '%{http_code}' "$victim_base/readyz")"
  [ "$code" = "503" ] && break
  sleep 0.1
done
[ "${code:-}" = "503" ] || { echo "FAIL: $victim never reported draining on /readyz" >&2; exit 1; }
echo "$victim draining (readyz 503)" >&2

fills0="$(scrape "$n1_base" ravbmc_cluster_peer_fill_hits_total)"
run_batch "$n1_base" "$tmp/warm.tsv" "$tmp/warm.json"
if ! cmp -s "$tmp/solo.tsv" "$tmp/warm.tsv"; then
  echo "FAIL: warm pass with a draining member disagrees with the solo daemon:" >&2
  diff "$tmp/solo.tsv" "$tmp/warm.tsv" >&2 || true
  exit 1
fi
fills=$(( $(scrape "$n1_base" ravbmc_cluster_peer_fill_hits_total) - fills0 ))
[ "$fills" -gt 0 ] || {
  echo "FAIL: warm pass made no peer cache fills from the draining owner" >&2
  curl -fsS "$n1_base/metrics" | grep '^ravbmc_cluster' >&2
  exit 1
}
served="$(scrape "$victim_base" ravbmc_cluster_peer_fill_served_total)"
[ "$served" -gt 0 ] || { echo "FAIL: draining $victim served no peer cache reads" >&2; exit 1; }
echo "warm pass byte-identical with solo ($fills peer fills, $served served by draining $victim)" >&2

# --- the victim must drain cleanly -------------------------------------
kill "$park_pid" 2>/dev/null || true
wait "$park_pid" 2>/dev/null || true
rc=0
wait "$victim_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: $victim exited $rc after SIGTERM" >&2
  cat "$tmp/$victim.err" >&2
  exit 1
fi
grep -q 'drained, bye' "$tmp/$victim.err" || {
  echo "FAIL: $victim never reported a clean drain" >&2
  cat "$tmp/$victim.err" >&2
  exit 1
}

echo "cluster smoke OK: $(wc -l <"$tmp/solo.tsv") rows byte-identical solo/cold/warm, $forwards forwards, $fills peer fills, clean drain of $victim" >&2
