#!/usr/bin/env bash
# service_smoke.sh — end-to-end smoke test of the vbmcd daemon.
#
# Starts vbmcd on an ephemeral port with a temp disk store, runs the
# same vbmc -remote sweep twice and asserts:
#
#   1. the two passes produce byte-identical verdicts (and witness
#      digests) for every benchmark;
#   2. the second pass is answered ≥90% from the cache, measured by
#      scraping ravbmc_cache_{hits,subsumed_hits}_total off /metrics;
#   3. the ravbmc_serve_request_seconds and ravbmc_cache_lookup_seconds
#      histogram families are present on /metrics and were observed;
#   4. the run ledger works end to end: /v1/runs lists the sweep's
#      runs, /v1/runs/{id} returns a record with a span tree, and the
#      -run-log audit file is non-empty;
#   5. the SSE event stream works both ways: a completed run's
#      /v1/runs/{id}/events replays ≥1 search frame and ends with a
#      done frame, and a live in-flight run (addressed by its
#      client_ref alias) streams ≥1 search frame mid-run;
#   6. a SIGTERM delivered while a long verification is in flight
#      drains gracefully: the daemon exits 0 and logs "drained, bye".
#
# Usage:
#   scripts/service_smoke.sh
#   SMOKE_TIMEOUT=60 scripts/service_smoke.sh   # per-request budget (s)
set -euo pipefail
cd "$(dirname "$0")/.."

req_timeout="${SMOKE_TIMEOUT:-30}"
tmp="$(mktemp -d)"
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

go build -o "$tmp/vbmcd" ./cmd/vbmcd
go build -o "$tmp/vbmc" ./cmd/vbmc

"$tmp/vbmcd" -addr 127.0.0.1:0 -disk "$tmp/cache.jsonl" -drain-grace 5s \
  -run-log "$tmp/runs.jsonl" \
  >"$tmp/vbmcd.out" 2>"$tmp/vbmcd.err" &
daemon_pid=$!

base=""
for _ in $(seq 1 100); do
  base="$(sed -n 's/^vbmcd listening on //p' "$tmp/vbmcd.out")"
  [ -n "$base" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || { cat "$tmp/vbmcd.err" >&2; exit 1; }
  sleep 0.1
done
[ -n "$base" ] || { echo "FAIL: daemon never printed its address" >&2; exit 1; }
echo "daemon up at $base (pid $daemon_pid)" >&2

# The quick Tables 1-2 rows: "bench k l" triples at the paper's bounds.
sweep_rows() {
  cat <<'EOF'
dekker 2 2
peterson_0 2 2
sim_dekker 2 2
peterson_1(3) 4 2
szymanski_1(3) 2 2
szymanski_1(4) 2 2
EOF
}

# sweep FILE — run every row through vbmc -remote, recording one stable
# line per row: bench, verdict, state count and witness digest. Timing
# fields are deliberately excluded so the two passes can be compared
# byte for byte.
sweep() {
  : >"$1"
  while read -r bench k l; do
    # vbmc exits 1 for UNSAFE; that's a verdict, not a failure.
    "$tmp/vbmc" -remote "$base" -bench "$bench" -k "$k" -l "$l" \
      -timeout "${req_timeout}s" -json >"$tmp/resp.json" || true
    jq -r --arg b "$bench" \
      '[$b, .verdict, (.states // 0), (.witness_jsonl // "" | @base64)] | @tsv' \
      "$tmp/resp.json" >>"$1"
  done < <(sweep_rows)
}

scrape() { # scrape METRIC — current counter value (0 if absent)
  curl -fsS "$base/metrics" | awk -v m="$1" '$1 == m { print $2; found = 1 } END { if (!found) print 0 }'
}

sweep "$tmp/pass1.tsv"
h1=$(( $(scrape ravbmc_cache_hits_total) + $(scrape ravbmc_cache_subsumed_hits_total) ))
sweep "$tmp/pass2.tsv"
h2=$(( $(scrape ravbmc_cache_hits_total) + $(scrape ravbmc_cache_subsumed_hits_total) ))

if ! cmp -s "$tmp/pass1.tsv" "$tmp/pass2.tsv"; then
  echo "FAIL: cold and warm sweeps disagree:" >&2
  diff "$tmp/pass1.tsv" "$tmp/pass2.tsv" >&2 || true
  exit 1
fi
grep -q 'UNSAFE' "$tmp/pass1.tsv" || { echo "FAIL: sweep found no UNSAFE verdicts" >&2; exit 1; }

rows=$(sweep_rows | wc -l)
hits=$((h2 - h1))
# ≥90% of the warm pass must be cache-answered (integer math: 10*hits ≥ 9*rows).
if [ $((10 * hits)) -lt $((9 * rows)) ]; then
  echo "FAIL: warm pass made $rows requests but only $hits were cache hits" >&2
  curl -fsS "$base/metrics" | grep '^ravbmc_cache' >&2
  exit 1
fi
echo "warm pass: $hits/$rows cache hits" >&2

[ -s "$tmp/cache.jsonl" ] || { echo "FAIL: disk store is empty" >&2; exit 1; }

# Observability: the latency histogram families must exist on /metrics
# with proper HELP/TYPE lines and a non-zero observation count.
metrics="$(curl -fsS "$base/metrics")"
for fam in ravbmc_serve_request_seconds ravbmc_cache_lookup_seconds; do
  grep -q "^# HELP $fam " <<<"$metrics" || { echo "FAIL: /metrics lacks HELP for $fam" >&2; exit 1; }
  grep -q "^# TYPE $fam histogram" <<<"$metrics" || { echo "FAIL: /metrics lacks $fam histogram family" >&2; exit 1; }
  cnt="$(awk -v m="${fam}_count" '$1 == m { print $2 }' <<<"$metrics")"
  [ "${cnt:-0}" -gt 0 ] || { echo "FAIL: $fam never observed (count=${cnt:-absent})" >&2; exit 1; }
done
echo "latency histograms present and populated" >&2

# Run ledger: the sweep's runs must be listed, the newest run's detail
# record must carry a span tree, and the audit log must be non-empty.
run_id="$(curl -fsS "$base/v1/runs?n=1" | jq -r '.runs[0].id // empty')"
[ -n "$run_id" ] || { echo "FAIL: /v1/runs returned no runs" >&2; exit 1; }
curl -fsS "$base/v1/runs/$run_id" | jq -e '(.spans | length) > 0 and .status == "done"' >/dev/null \
  || { echo "FAIL: /v1/runs/$run_id has no span tree" >&2; exit 1; }
[ -s "$tmp/runs.jsonl" ] || { echo "FAIL: run log is empty" >&2; exit 1; }
grep -q "\"id\":\"$run_id\"" "$tmp/runs.jsonl" || {
  echo "FAIL: run $run_id missing from the audit log" >&2; exit 1; }
echo "run ledger OK (latest run $run_id, audit log $(wc -l <"$tmp/runs.jsonl") lines)" >&2

# SSE replay: a completed run's event stream must carry at least one
# search frame (the sampler's terminal sample at minimum) and exactly
# one terminal done frame.
curl -sN --max-time 10 "$base/v1/runs/$run_id/events" >"$tmp/replay.sse" || true
grep -q '^event: search' "$tmp/replay.sse" || {
  echo "FAIL: completed-run SSE replay has no search frame:" >&2
  cat "$tmp/replay.sse" >&2; exit 1; }
[ "$(grep -c '^event: done' "$tmp/replay.sse")" -eq 1 ] || {
  echo "FAIL: completed-run SSE replay lacks a single done frame" >&2
  cat "$tmp/replay.sse" >&2; exit 1; }
echo "SSE replay OK ($(grep -c '^event: search' "$tmp/replay.sse") search frames)" >&2

# Live SSE: park a long verification carrying a client_ref alias and
# stream its events mid-flight — at least one search frame must arrive
# while the run executes. Killing the parked POST disconnects its
# request context, which cancels the run server-side.
curl -fsS -X POST "$base/v1/verify" -H 'Content-Type: application/json' \
  -d '{"bench":"peterson_1","mode":"vbmc","k":5,"unroll":6,"timeout_seconds":120,"client_ref":"smoke-live-1"}' \
  >/dev/null 2>&1 &
live_pid=$!
live_ok=""
for _ in $(seq 1 25); do
  curl -sN --max-time 3 "$base/v1/runs/smoke-live-1/events" >"$tmp/live.sse" 2>/dev/null || true
  if grep -q '^event: search' "$tmp/live.sse"; then live_ok=1; break; fi
  kill -0 "$live_pid" 2>/dev/null || break
  sleep 0.2
done
kill "$live_pid" 2>/dev/null || true
wait "$live_pid" 2>/dev/null || true
[ -n "$live_ok" ] || {
  echo "FAIL: no live search frame arrived on the in-flight stream:" >&2
  cat "$tmp/live.sse" >&2; exit 1; }
echo "live SSE OK (in-flight stream delivered search frames)" >&2

# Graceful drain under fire: park a long verification on the daemon,
# then SIGTERM it mid-run. The daemon must exit 0 within the grace.
"$tmp/vbmc" -remote "$base" -bench peterson_1 -k 5 -l 6 -timeout 120s \
  >/dev/null 2>&1 || true &
client_pid=$!
sleep 1
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
wait "$client_pid" 2>/dev/null || true
if [ "$rc" -ne 0 ]; then
  echo "FAIL: daemon exited $rc after SIGTERM" >&2
  cat "$tmp/vbmcd.err" >&2
  exit 1
fi
grep -q 'drained, bye' "$tmp/vbmcd.err" || {
  echo "FAIL: daemon never reported a clean drain" >&2
  cat "$tmp/vbmcd.err" >&2
  exit 1
}

echo "service smoke OK: $rows rows byte-identical across passes, $hits warm hits, clean drain" >&2
