#!/usr/bin/env sh
# Regenerates every artifact recorded in EXPERIMENTS.md.
#
# Usage: sh scripts/reproduce.sh [timeout-per-tool-run]
# The default 45s budget reproduces the shapes on a laptop-class core in
# about an hour; raise it towards the paper's 3600s for wider coverage.
set -e
TIMEOUT="${1:-45s}"

echo "== build and test =="
go build ./...
go test ./...

echo "== paper tables (timeout $TIMEOUT per tool run) =="
go run ./cmd/ratables -table 1 -timeout "$TIMEOUT"
for t in 2 3 4 5 6 7 8; do
  go run ./cmd/ratables -table "$t" -timeout "$TIMEOUT"
done

echo "== litmus sweep (every 17th generated program; -stride 1 for all) =="
go run ./cmd/ratables -table litmus -stride 17 -k 5

echo "== theorem artifacts =="
go run ./cmd/pcpgen -u a -v a -run
go run ./cmd/pcpgen -u ab -v ba -run || true   # unsolvable: exit 1 expected

echo "== differential fuzzing =="
go run ./cmd/rafuzz -n 300 -seed 1

echo "== quick benchmark pass =="
go test -run XXX -bench . -benchmem -timeout 0 .
