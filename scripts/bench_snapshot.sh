#!/usr/bin/env bash
# bench_snapshot.sh — record a VBMC performance trajectory point.
#
# Runs `vbmc -json` over the paper's Table 1 benchmarks (the unfenced
# mutual-exclusion protocols, K=2, L=2) and writes the run reports as a
# JSON array to BENCH_vbmc.json at the repo root. Each report carries
# the verdict, per-phase wall times and all engine counters, so future
# PRs can diff states/sec, dedup hit rate and probe behaviour against
# this snapshot.
#
# Every benchmark is run twice: once plainly (trace export disabled)
# and once with -trace-out (witness export + view capture during
# replay). The second sweep's reports carry config.trace = "enabled",
# so diffing seconds between the pairs measures the tracing overhead —
# which should be confined to the lift/replay/export phases, with the
# search itself unchanged.
#
# Usage:
#   scripts/bench_snapshot.sh            # 60s per-run budget
#   VBMC_TIMEOUT=10s scripts/bench_snapshot.sh
#   VBMC_OUT=/tmp/b.json scripts/bench_snapshot.sh
set -euo pipefail
cd "$(dirname "$0")/.."

out="${VBMC_OUT:-BENCH_vbmc.json}"
timeout="${VBMC_TIMEOUT:-60s}"
benches=(bakery burns dekker lamport peterson_0 'peterson_0(3)' sim_dekker szymanski_0)
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT

go build -o /tmp/vbmc-bench ./cmd/vbmc

{
  echo '['
  first=1
  for mode in disabled enabled; do
    for b in "${benches[@]}"; do
      [ "$first" -eq 1 ] || echo ','
      first=0
      args=(-json -k 2 -l 2 -timeout "$timeout" -bench "$b")
      if [ "$mode" = enabled ]; then
        args+=(-trace-out "$tracedir/${b//[^a-z0-9_]/_}.jsonl")
      fi
      # vbmc exits 1 for UNSAFE / 2 for INCONCLUSIVE; both still emit a
      # report, so don't let set -e kill the sweep.
      /tmp/vbmc-bench "${args[@]}" || true
    done
  done
  echo ']'
} >"$out"

echo "wrote $out ($(grep -c '"tool"' "$out") reports)" >&2
