#!/usr/bin/env bash
# bench_snapshot.sh — record a VBMC performance trajectory point.
#
# Runs `vbmc -json` over the paper's Table 1 benchmarks (the unfenced
# mutual-exclusion protocols, K=2, L=2) and writes the run reports as a
# JSON array to BENCH_vbmc.json at the repo root. Each report carries
# the verdict, per-phase wall times and all engine counters, so future
# PRs can diff states/sec, dedup hit rate and probe behaviour against
# this snapshot.
#
# Every benchmark is run four times: once plainly, once with
# -trace-out (witness export + view capture during replay), once with
# -span-out (span-tree phase tracing) and once with -sample-interval
# 250ms (live search-telemetry sampling). The sweeps' reports carry
# config.trace / config.spans / config.sampling = "enabled"
# respectively, so diffing seconds between the sweeps measures each
# overhead: witness tracing should be confined to the
# lift/replay/export phases, span tracing should be unmeasurable —
# spans piggyback on the existing phase instrumentation, off the
# search hot path — and sampling should stay within ~2%: the engines
# flush a handful of atomics per kilostep and the sampler polls them
# from its own goroutine.
#
# A reduction sweep then pairs plain and -reduce runs over an
# UNSAFE/SAFE benchmark mix and appends a "reduce" entry per SAFE
# benchmark with the full/reduced sc.states counts and their ratio —
# the source-DPOR reduction factor on the recording machine.
#
# After the per-benchmark reports, the quick Tables 1-4 sweep is run
# twice through cmd/ratables — once serial (-jobs 1), once with one
# worker per CPU (-jobs 0) — and both wall-clock times are appended as
# "ratables" entries, so the snapshot records the scheduler's speedup
# on the recording machine (a 1-core runner legitimately shows none).
#
# Next the quick Tables 1-2 rows are swept twice through a vbmcd
# daemon (temp disk store, ephemeral port) via vbmc -remote: the cold
# pass computes and memoizes every cell, the warm pass repeats the
# identical requests and must be answered from the content-addressed
# cache. Both wall-clock times land as "vbmcd" entries together with
# the speedup, so the snapshot records how much the result cache buys
# on the recording machine (acceptance: warm ≥5x faster than cold).
#
# The same rows are then swept as one POST /v1/batch against a 3-node
# vbmcd cluster (static -peers list, ephemeral ports) three times: a
# cold pass (every cell computed once, spread across the ring by
# consistent-hash ownership), a warm pass (every cell answered by its
# owner's cache over forwarding) and a peer-filled pass (one member is
# SIGTERM'd into draining first, so the coordinator absorbs its items
# by filling from the draining owner's still-warm cache). Each pass
# lands as a "vbmcd_cluster" entry with its wall seconds; the
# peer-filled entry also records the coordinator's peer-fill hit
# count, so the snapshot shows what cluster cache locality buys — and
# costs — on the recording machine.
#
# Finally BenchmarkDedupModes is run (serial, -benchmem) and each
# sub-benchmark line is appended as a "dedup" entry with ns/op, B/op,
# allocs/op and (for ra/sc) states/s — the before/after record for the
# fingerprinted-visited-set work: comparing the fingerprint and exact
# rows of one snapshot shows the win on the recording machine, and
# comparing snapshots across PRs shows the trajectory.
#
# Usage:
#   scripts/bench_snapshot.sh            # 60s per-run budget
#   VBMC_TIMEOUT=10s scripts/bench_snapshot.sh
#   VBMC_OUT=/tmp/b.json scripts/bench_snapshot.sh
set -euo pipefail
cd "$(dirname "$0")/.."

out="${VBMC_OUT:-BENCH_vbmc.json}"
timeout="${VBMC_TIMEOUT:-60s}"
table_timeout="${RATABLES_TIMEOUT:-10s}"
benches=(bakery burns dekker lamport peterson_0 'peterson_0(3)' sim_dekker szymanski_0)
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT

go build -o /tmp/vbmc-bench ./cmd/vbmc
go build -o /tmp/ratables-bench ./cmd/ratables
go build -o /tmp/vbmcd-bench ./cmd/vbmcd

# table_sweep jobs — quick Tables 1-4 at the given pool width, printing
# the elapsed wall-clock seconds.
table_sweep() {
  local t0 t1
  t0=$(date +%s%N)
  for t in 1 2 3 4; do
    /tmp/ratables-bench -table "$t" -quick -timeout "$table_timeout" -jobs "$1" >/dev/null
  done
  t1=$(date +%s%N)
  awk -v ns=$((t1 - t0)) 'BEGIN { printf "%.3f", ns / 1e9 }'
}

# remote_sweep base — the quick Tables 1-2 rows through a vbmcd daemon,
# printing the elapsed wall-clock seconds.
remote_sweep() {
  local t0 t1
  t0=$(date +%s%N)
  while read -r b bk bl; do
    /tmp/vbmc-bench -remote "$1" -bench "$b" -k "$bk" -l "$bl" \
      -timeout "$table_timeout" >/dev/null || true
  done <<'EOF'
dekker 2 2
peterson_0 2 2
sim_dekker 2 2
peterson_1(3) 4 2
szymanski_1(3) 2 2
szymanski_1(4) 2 2
EOF
  t1=$(date +%s%N)
  awk -v ns=$((t1 - t0)) 'BEGIN { printf "%.3f", ns / 1e9 }'
}

# batch_sweep base — the same rows as one POST /v1/batch, printing the
# elapsed wall-clock seconds.
batch_sweep() {
  local t0 t1
  t0=$(date +%s%N)
  jq -Rs --argjson t "${table_timeout%s}" '
    {items: [split("\n")[] | select(length > 0) | split(" ") |
      {bench: .[0], mode: "vbmc", k: (.[1] | tonumber),
       unroll: (.[2] | tonumber), timeout_seconds: $t}]}' <<'EOF' |
dekker 2 2
peterson_0 2 2
sim_dekker 2 2
peterson_1(3) 4 2
szymanski_1(3) 2 2
szymanski_1(4) 2 2
EOF
    curl -fsS -X POST "$1/v1/batch" -H 'Content-Type: application/json' -d @- >/dev/null
  t1=$(date +%s%N)
  awk -v ns=$((t1 - t0)) 'BEGIN { printf "%.3f", ns / 1e9 }'
}

scrape_metric() { # scrape_metric BASE METRIC — counter value, 0 if absent
  curl -fsS "$1/metrics" | awk -v m="$2" '$1 == m { print $2; found = 1 } END { if (!found) print 0 }'
}

{
  echo '['
  first=1
  for mode in disabled enabled spans sampled; do
    for b in "${benches[@]}"; do
      [ "$first" -eq 1 ] || echo ','
      first=0
      args=(-json -k 2 -l 2 -timeout "$timeout" -bench "$b")
      if [ "$mode" = enabled ]; then
        args+=(-trace-out "$tracedir/${b//[^a-z0-9_]/_}.jsonl")
      elif [ "$mode" = spans ]; then
        args+=(-span-out "$tracedir/${b//[^a-z0-9_]/_}.spans.jsonl")
      elif [ "$mode" = sampled ]; then
        args+=(-sample-interval 250ms)
      fi
      # vbmc exits 1 for UNSAFE / 2 for INCONCLUSIVE; both still emit a
      # report, so don't let set -e kill the sweep.
      /tmp/vbmc-bench "${args[@]}" || true
    done
  done
  # Intra-query parallel sweep: peterson_4 (fenced, SAFE — the search
  # must cover its whole bounded space, so states/s measures raw
  # exploration throughput) at work-stealing widths 0 (serial) and
  # 1/2/4/8. Each report carries config.workers; on a multi-core
  # recorder the 4-worker run should show ≥2x the serial states/s,
  # while a 1-core runner legitimately shows none (the partest harness
  # guarantees the verdict and census are identical either way).
  for w in 0 1 2 4 8; do
    echo ','
    /tmp/vbmc-bench -json -k 2 -l 2 -timeout "$timeout" -bench peterson_4 -workers "$w" || true
  done
  # Source-DPOR reduction sweep: each benchmark once plainly and once
  # with -reduce (the -reduce reports carry config.reduce = "enabled").
  # tbar and peterson_4 are SAFE, so both searches exhaust the bounded
  # space and the sc.states ratio between the paired reports IS the
  # reduction factor (~5x and ~6x across the driver's deepening
  # rounds); the unfenced UNSAFE pair stops at its first violation,
  # where only the verdict is comparable, so no factor is recorded. An
  # explicit "reduce" entry records each factor so the trajectory can
  # be read without re-deriving the ratios.
  for b in peterson_0 tbar peterson_4; do
    for r in '' '-reduce'; do
      echo ','
      # shellcheck disable=SC2086 — $r is intentionally word-split
      /tmp/vbmc-bench -json -k 2 -l 2 -timeout "$timeout" -bench "$b" $r \
        >"$tracedir/red-$r-${b//[^a-z0-9_]/_}.json" || true
      cat "$tracedir/red-$r-${b//[^a-z0-9_]/_}.json"
    done
    full=$(sed -n 's/^ *"sc.states": \([0-9]*\).*/\1/p' "$tracedir/red--${b//[^a-z0-9_]/_}.json" | head -1)
    red=$(sed -n 's/^ *"sc.states": \([0-9]*\).*/\1/p' "$tracedir/red--reduce-${b//[^a-z0-9_]/_}.json" | head -1)
    verdict=$(sed -n 's/^ *"verdict": "\([A-Z]*\)".*/\1/p' "$tracedir/red--${b//[^a-z0-9_]/_}.json" | head -1)
    if [ "$verdict" = SAFE ] && [ -n "$full" ] && [ -n "$red" ] && [ "$red" -gt 0 ]; then
      echo ','
      awk -v b="$b" -v f="$full" -v r="$red" 'BEGIN {
        printf "{\"tool\": \"reduce\", \"bench\": \"%s\", \"full_states\": %s, \"reduced_states\": %s, \"factor\": %.2f}\n", b, f, r, f / r
      }'
    fi
  done
  for jobs in 1 0; do
    secs="$(table_sweep "$jobs")"
    echo ','
    printf '{"tool": "ratables", "bench": "tables_1-4_quick", "config": {"jobs": "%s", "timeout": "%s", "cpus": "%s"}, "wall_seconds": %s}\n' \
      "$jobs" "$table_timeout" "$(nproc)" "$secs"
  done
  /tmp/vbmcd-bench -addr 127.0.0.1:0 -disk "$tracedir/cache.jsonl" \
    >"$tracedir/vbmcd.out" 2>"$tracedir/vbmcd.err" &
  daemon=$!
  base=""
  for _ in $(seq 1 100); do
    base="$(sed -n 's/^vbmcd listening on //p' "$tracedir/vbmcd.out")"
    [ -n "$base" ] && break
    sleep 0.1
  done
  cold="$(remote_sweep "$base")"
  warm="$(remote_sweep "$base")"
  kill "$daemon" 2>/dev/null && wait "$daemon" 2>/dev/null || true
  for pass in cold warm; do
    [ "$pass" = cold ] && secs="$cold" || secs="$warm"
    echo ','
    printf '{"tool": "vbmcd", "bench": "tables_1-2_quick_remote", "config": {"pass": "%s", "timeout": "%s", "cpus": "%s"}, "wall_seconds": %s}\n' \
      "$pass" "$table_timeout" "$(nproc)" "$secs"
  done
  echo ','
  awk -v c="$cold" -v w="$warm" 'BEGIN {
    printf "{\"tool\": \"vbmcd\", \"bench\": \"tables_1-2_quick_remote\", \"config\": {\"pass\": \"speedup\"}, \"cold_over_warm\": %.1f}\n", c / w
  }'
  # 3-node cluster sweep: cold, warm, then peer-filled with one member
  # draining. The static peer list needs the ports up front.
  cat >"$tracedir/freeports.go" <<'EOF'
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
)

func main() {
	n, _ := strconv.Atoi(os.Args[1])
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lns[i] = ln
		fmt.Println(ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range lns {
		ln.Close()
	}
}
EOF
  mapfile -t cports < <(go run "$tracedir/freeports.go" 3)
  cpeers="c1=http://127.0.0.1:${cports[0]},c2=http://127.0.0.1:${cports[1]},c3=http://127.0.0.1:${cports[2]}"
  cpids=()
  for i in 0 1 2; do
    /tmp/vbmcd-bench -addr "127.0.0.1:${cports[$i]}" -node-id "c$((i+1))" \
      -peers "$cpeers" -drain-grace 120s -probe-interval 500ms \
      >"$tracedir/c$((i+1)).out" 2>"$tracedir/c$((i+1)).err" &
    cpids+=($!)
  done
  cbase="http://127.0.0.1:${cports[0]}"
  vbase="http://127.0.0.1:${cports[2]}"
  for b in "$cbase" "http://127.0.0.1:${cports[1]}" "$vbase"; do
    for _ in $(seq 1 100); do
      curl -fsS "$b/healthz" >/dev/null 2>&1 && break
      sleep 0.1
    done
  done
  ccold="$(batch_sweep "$cbase")"
  cwarm="$(batch_sweep "$cbase")"
  # Drain c3: a parked long verification (pinned local by the forwarded
  # header) keeps it alive-but-draining through the peer-filled pass.
  curl -fsS -X POST "$vbase/v1/verify" -H 'Content-Type: application/json' \
    -H 'X-Ravbmc-Forwarded-From: bench' \
    -d '{"bench":"peterson_1","mode":"vbmc","k":5,"unroll":6,"timeout_seconds":120}' \
    >/dev/null 2>&1 &
  cpark=$!
  for _ in $(seq 1 50); do
    [ "$(scrape_metric "$vbase" ravbmc_serve_active)" -gt 0 ] && break
    sleep 0.1
  done
  kill -TERM "${cpids[2]}" 2>/dev/null || true
  for _ in $(seq 1 50); do
    [ "$(curl -s -o /dev/null -w '%{http_code}' "$vbase/readyz")" = "503" ] && break
    sleep 0.1
  done
  fills0="$(scrape_metric "$cbase" ravbmc_cluster_peer_fill_hits_total)"
  cfilled="$(batch_sweep "$cbase")"
  fills=$(( $(scrape_metric "$cbase" ravbmc_cluster_peer_fill_hits_total) - fills0 ))
  kill "$cpark" 2>/dev/null || true
  wait "$cpark" 2>/dev/null || true
  for p in "${cpids[@]}"; do
    kill "$p" 2>/dev/null || true
    wait "$p" 2>/dev/null || true
  done
  for pass in cold warm peer_filled; do
    case "$pass" in
      cold) secs="$ccold" ;;
      warm) secs="$cwarm" ;;
      peer_filled) secs="$cfilled" ;;
    esac
    echo ','
    extra=""
    [ "$pass" = peer_filled ] && extra=", \"peer_fill_hits\": $fills"
    printf '{"tool": "vbmcd_cluster", "bench": "tables_1-2_quick_batch", "config": {"pass": "%s", "nodes": "3", "timeout": "%s", "cpus": "%s"}, "wall_seconds": %s%s}\n' \
      "$pass" "$table_timeout" "$(nproc)" "$secs" "$extra"
  done
  go test -run '^$' -bench BenchmarkDedupModes -benchmem -benchtime "${DEDUP_BENCHTIME:-2s}" . 2>/dev/null |
    awk '/^BenchmarkDedupModes\// {
      name = $1; sub(/^BenchmarkDedupModes\//, "", name); sub(/-[0-9]+$/, "", name)
      ns = ""; bytes = ""; allocs = ""; rate = ""
      for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "states/s") rate = $i
      }
      printf ",\n{\"tool\": \"dedup\", \"bench\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, ns, bytes, allocs
      if (rate != "") printf ", \"states_per_sec\": %s", rate
      print "}"
    }'
  echo ']'
} >"$out"

echo "wrote $out ($(grep -c '"tool"' "$out") reports)" >&2
