package ravbmc_test

import (
	"strings"
	"testing"

	"ravbmc"
)

const mpSrc = `
program mp
var x y
proc p0
  x = 1
  y = 1
end
proc p1
  reg a b
  $a = y
  $b = x
  assert(!($a == 1 && $b == 0))
end
`

const sbSrc = `
program sb
var x y
proc p0
  reg a
  x = 1
  $a = y
  assert($a == 1)
end
proc p1
  y = 1
end
`

func TestPublicParseAndVBMC(t *testing.T) {
	prog, err := ravbmc.Parse(mpSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ravbmc.VBMC(prog, ravbmc.VBMCOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != ravbmc.Safe {
		t.Errorf("MP must be SAFE under RA, got %v", res.Verdict)
	}

	sb := ravbmc.MustParse(sbSrc)
	res, err = ravbmc.VBMC(sb, ravbmc.VBMCOptions{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != ravbmc.Unsafe {
		t.Errorf("SB stale read needs no view switch; got %v", res.Verdict)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Error("UNSAFE without a trace")
	}
}

func TestPublicExploreRA(t *testing.T) {
	prog := ravbmc.MustParse(sbSrc)
	res, err := ravbmc.ExploreRA(prog, ravbmc.ExploreOptions{ViewBound: -1, StopOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Error("explorer must find the SB stale read")
	}
}

func TestPublicSMC(t *testing.T) {
	prog := ravbmc.MustParse(sbSrc)
	for _, alg := range []ravbmc.SMCAlgorithm{
		ravbmc.AlgorithmTracer, ravbmc.AlgorithmCDS, ravbmc.AlgorithmRCMC,
	} {
		res, err := ravbmc.SMC(prog, ravbmc.SMCOptions{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Violation {
			t.Errorf("%v: must find the SB stale read", alg)
		}
	}
}

func TestPublicTranslateEmitsSC(t *testing.T) {
	prog := ravbmc.MustParse(mpSrc)
	out, err := ravbmc.Translate(prog, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"_ms_var", "_messages_used", "_s_RA", "atomic"} {
		if !strings.Contains(s, frag) {
			t.Errorf("translated program missing %q", frag)
		}
	}
}

func TestPublicUnroll(t *testing.T) {
	prog := ravbmc.MustParse(`
var x
proc p
  reg r
  while $r == 0 do
    $r = x
  done
end
`)
	u := ravbmc.Unroll(prog, 3)
	if got := u.String(); strings.Contains(got, "while") {
		t.Errorf("unrolled program still has a loop:\n%s", got)
	}
}

func TestPublicParseError(t *testing.T) {
	if _, err := ravbmc.Parse("not a program"); err == nil {
		t.Error("expected parse error")
	}
}
