// Package ravbmc is a verification toolkit for concurrent programs
// running under the release-acquire (RA) semantics, reproducing the
// system of "Verification of Programs under the Release-Acquire
// Semantics" (Abdulla, Arora, Atig, Krishna; PLDI 2019).
//
// It provides:
//
//   - a small concurrent programming language (the paper's Fig. 1
//     syntax) with a parser, validator and loop unroller;
//   - an executable RA operational semantics with an exhaustive,
//     optionally view-bounded explorer (the litmus oracle);
//   - the paper's primary contribution: the view-bounded code-to-code
//     translation [[.]]_K from RA to SC, plus a context-bounded
//     explicit-state SC model checker as the backend — together the
//     VBMC pipeline;
//   - stateless-model-checking baselines in the style of Tracer,
//     CDSChecker and RCMC;
//   - the paper's benchmark programs (mutual-exclusion protocols in all
//     fencing/bug variants), a litmus-test corpus, the Theorem 4.1 PCP
//     reduction, and a lossy-channel-system package for Theorem 4.3;
//   - a declarative (axiomatic) second implementation of both RA and SC
//     for differential validation, and an observational-robustness
//     checker.
//
// # Quick start
//
//	prog, err := ravbmc.Parse(src)          // or benchmarks.ByName("peterson_0")
//	res, err := ravbmc.VBMC(prog, ravbmc.VBMCOptions{K: 2, Unroll: 2})
//	fmt.Println(res.Verdict)                 // SAFE / UNSAFE
//	if res.Trace != nil { fmt.Print(res.Trace) }
//
// The subsystem packages under internal/ carry the implementation; this
// package re-exports the surface a downstream user needs.
package ravbmc

import (
	"ravbmc/internal/axiom"
	"ravbmc/internal/core"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
	"ravbmc/internal/parser"
	"ravbmc/internal/ra"
	"ravbmc/internal/robust"
	"ravbmc/internal/smc"
	"ravbmc/internal/tmai"
	"ravbmc/internal/trace"
)

// Core program types.
type (
	// Program is a concurrent program AST (paper Fig. 1 syntax).
	Program = lang.Program
	// Proc is one process of a program.
	Proc = lang.Proc
	// Value is the data domain of registers and shared variables.
	Value = lang.Value
	// Trace is a counterexample execution.
	Trace = trace.Trace
)

// VBMC pipeline types.
type (
	// VBMCOptions configures a VBMC run: the view bound K, the loop
	// unrolling bound, optional backend limits, and an optional
	// observability recorder.
	VBMCOptions = core.Options
	// VBMCResult carries the verdict, witness trace and statistics; when
	// the run was instrumented it also carries a Report.
	VBMCResult = core.Result
	// Verdict is SAFE, UNSAFE or INCONCLUSIVE.
	Verdict = core.Verdict
)

// Observability types (internal/obs). Pass a Recorder via
// VBMCOptions.Obs (or the engine Options' Obs fields) to collect phase
// timings and search counters; read them back as a Report or live via
// Snapshot.
type (
	// Recorder collects counters, gauges and phase timings for one run.
	Recorder = obs.Recorder
	// Report is the structured, JSON-marshalable run summary.
	Report = obs.Report
	// ObsSnapshot is a point-in-time view of a live run.
	ObsSnapshot = obs.Snapshot
	// ObsSink observes phase events as they happen.
	ObsSink = obs.Sink
)

// NewRecorder returns an empty observability recorder. A nil *Recorder
// is the disabled default: every instrument call on it is a no-op
// nil-check, so engines can be left permanently instrumented.
func NewRecorder() *Recorder { return obs.New() }

// Verdicts.
const (
	Safe         = core.Safe
	Unsafe       = core.Unsafe
	Inconclusive = core.Inconclusive
)

// RA exploration types.
type (
	// ExploreOptions configures the exhaustive RA explorer.
	ExploreOptions = ra.Options
	// ExploreResult is the outcome of an RA exploration.
	ExploreResult = ra.Result
)

// SMC baseline types.
type (
	// SMCOptions selects and configures a stateless baseline.
	SMCOptions = smc.Options
	// SMCResult is the outcome of a baseline run.
	SMCResult = smc.Result
	// SMCAlgorithm identifies a baseline search strategy.
	SMCAlgorithm = smc.Algorithm
)

// Baseline algorithms (substitutes for the tools compared in the paper).
const (
	AlgorithmCDS    = smc.AlgorithmCDS
	AlgorithmTracer = smc.AlgorithmTracer
	AlgorithmRCMC   = smc.AlgorithmRCMC
	AlgorithmRandom = smc.AlgorithmRandom
)

// Parse parses a program in the concrete syntax (see internal/parser for
// the grammar) and validates it.
func Parse(src string) (*Program, error) { return parser.Parse(src) }

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *Program { return parser.MustParse(src) }

// VBMC checks the program under RA with at most K view switches by
// translating it to SC (the paper's [[.]]_K) and model-checking the
// translation with the context-bounded backend.
func VBMC(p *Program, opts VBMCOptions) (VBMCResult, error) { return core.Run(p, opts) }

// Translate applies the code-to-code translation [[.]]_K and returns the
// SC program, for inspection or use with other SC backends. The input
// must be loop-free (use Unroll first).
func Translate(p *Program, k int) (*Program, error) { return core.Translate(p, k) }

// ExploreRA runs the exhaustive RA explorer (the oracle): exact for
// loop-free programs, optionally bounded in view switches.
func ExploreRA(p *Program, opts ExploreOptions) (ExploreResult, error) {
	if err := p.ValidateRA(); err != nil {
		return ExploreResult{}, err
	}
	cp, err := lang.Compile(p)
	if err != nil {
		return ExploreResult{}, err
	}
	return ra.NewSystem(cp).Explore(opts), nil
}

// SMC runs one of the stateless-model-checking baselines on the program
// directly under RA.
func SMC(p *Program, opts SMCOptions) (SMCResult, error) { return smc.Check(p, opts) }

// Thread-modular abstract interpretation types (internal/tmai).
type (
	// TMAIOptions configures the thread-modular analysis.
	TMAIOptions = tmai.Options
	// TMAIResult carries the unbounded verdict: Safe holds for every
	// K/L/context budget; Unknown means only that the abstraction gave
	// up, never that a bug exists.
	TMAIResult = tmai.Result
)

// TMAI verdicts.
const (
	TMAISafe    = tmai.Safe
	TMAIUnknown = tmai.Unknown
)

// TMAI runs the thread-modular abstract interpretation: a sound
// over-approximation of RA whose SAFE verdicts hold unbounded — for
// every view bound K — at a cost polynomial in the program size. It
// never reports UNSAFE; pair it with VBMC for the refutation side.
func TMAI(p *Program, opts TMAIOptions) TMAIResult { return tmai.Analyze(p, opts) }

// Unroll rewrites every loop into at most bound unrolled iterations with
// a final unwinding assumption, as the bounded backends require.
func Unroll(p *Program, bound int) *Program { return lang.Unroll(p, bound) }

// AxiomaticOutcomes enumerates the RA-consistent outcomes of a loop-free
// program under the declarative presentation of the model (internal/axiom)
// — an oracle independent of the operational engine. render receives the
// per-process register files of each completed execution and its results
// are collected into a set.
func AxiomaticOutcomes(p *Program, render func(regs [][]Value) string) (map[string]bool, error) {
	cp, err := lang.Compile(p)
	if err != nil {
		return nil, err
	}
	e, err := axiom.NewEnumerator(cp, render)
	if err != nil {
		return nil, err
	}
	return e.Outcomes(), nil
}

// RobustnessResult reports whether a program's RA outcomes coincide with
// its SC outcomes, and the weak outcomes otherwise.
type RobustnessResult = robust.Result

// CheckRobustness decides observational robustness against RA for a
// loop-free program (or its unrolling): robust programs exhibit no weak
// behaviours and need no fences.
func CheckRobustness(p *Program, unroll int) (RobustnessResult, error) {
	return robust.Check(p, unroll)
}
