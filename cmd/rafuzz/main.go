// Command rafuzz differentially fuzzes the three independent RA
// implementations in this repository: random loop-free programs are run
// through the operational explorer (internal/ra), the axiomatic
// enumerator (internal/axiom) and — when an assertion is present — the
// VBMC pipeline (internal/core), and any disagreement is reported with
// the offending program.
//
// Usage:
//
//	rafuzz -n 500 -seed 7 -procs 2 -ops 3 [-k 5] [-v] [-json]
//	rafuzz -n 5000 -progress     # live snapshots on stderr while fuzzing
//
// Every UNSAFE verdict VBMC produces during the fuzz run carries a
// lifted source-level witness; rafuzz re-validates each one via RA
// replay and counts a failed validation as a mismatch, so the witness
// pipeline is fuzzed alongside the verdicts.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"ravbmc"
	"ravbmc/internal/axiom"
	"ravbmc/internal/lang"
	"ravbmc/internal/obs"
	"ravbmc/internal/ra"
	"ravbmc/internal/version"
)

func main() {
	var (
		n          = flag.Int("n", 200, "number of programs")
		seed       = flag.Int64("seed", 1, "PRNG seed")
		nprocs     = flag.Int("procs", 2, "processes per program (2..3)")
		nops       = flag.Int("ops", 3, "operations per process (1..4)")
		k          = flag.Int("k", 5, "VBMC view bound")
		verbose    = flag.Bool("v", false, "log every program")
		jsonOut    = flag.Bool("json", false, "emit a JSON run report on stdout instead of the summary line")
		progress   = flag.Bool("progress", false, "print periodic live progress snapshots to stderr")
		progressIv = flag.Duration("progress-interval", time.Second, "interval between -progress snapshots")
		showVer    = flag.Bool("version", false, "print the toolchain version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return
	}
	rng := rand.New(rand.NewSource(*seed))
	rec := obs.New()
	// Stop is idempotent and nil-safe, so the mismatch exit below can
	// retire the printer explicitly even though the defer also runs on
	// the normal return path.
	var printer *obs.Progress
	if *progress {
		printer = obs.NewProgress(os.Stderr, rec, *progressIv)
		rec.SetSink(printer)
	}
	defer printer.Stop()
	mismatches := 0
	for i := 0; i < *n; i++ {
		prog := randomProgram(rng, *nprocs, *nops)
		if *verbose {
			fmt.Printf("=== program %d ===\n%s", i, prog)
		}
		rec.Counter("rafuzz.programs").Inc()
		if ok, why := agree(prog, *k, rec); !ok {
			mismatches++
			rec.Counter("rafuzz.mismatches").Inc()
			// Present a 1-minimal witness of the disagreement.
			small := lang.Shrink(prog, func(q *lang.Program) bool {
				bad, _ := agree(q, *k, nil)
				return !bad
			})
			fmt.Printf("MISMATCH on program %d (%s); minimal witness:\n%s\n", i, why, small)
		}
	}
	if *jsonOut {
		rep := rec.Report()
		rep.Tool = "rafuzz"
		rep.Verdict = "AGREE"
		if mismatches > 0 {
			rep.Verdict = "MISMATCH"
		}
		os.Stdout.Write(append(rep.JSON(), '\n'))
	} else if mismatches == 0 {
		fmt.Printf("all %d programs agree across the oracles\n", *n)
	}
	if mismatches > 0 {
		if !*jsonOut {
			fmt.Printf("%d mismatches out of %d programs\n", mismatches, *n)
		}
		printer.Stop()
		os.Exit(1)
	}
}

// agree cross-checks operational vs axiomatic outcome sets, and the
// VBMC verdict of a derived assertion against the operational oracle;
// UNSAFE verdicts must additionally carry a replay-validated witness.
// It returns false with a reason on disagreement.
func agree(prog *lang.Program, k int, rec *obs.Recorder) (bool, string) {
	cp := lang.MustCompile(prog)

	// Outcome comparison (assert-free semantics: the generator emits no
	// assertions).
	obs := func(regs func(p int, r int) lang.Value) string {
		s := ""
		for pi, pr := range cp.Procs {
			for ri, reg := range pr.Regs {
				s += fmt.Sprintf("%s.%s=%d;", pr.Name, reg, regs(pi, ri))
			}
		}
		return s
	}
	raSys := ra.NewSystem(cp)
	opOut := raSys.ReachableOutcomes(0, func(c *ra.Config) string {
		return obs(func(p, r int) lang.Value { return c.Reg(p, r) })
	})
	enum, err := axiom.NewEnumerator(cp, func(regs [][]lang.Value) string {
		return obs(func(p, r int) lang.Value { return regs[p][r] })
	})
	if err != nil {
		return false, "axiom error: " + err.Error()
	}
	axOut := enum.Outcomes()
	if len(opOut) != len(axOut) {
		return false, fmt.Sprintf("outcome sets differ: operational %d vs axiomatic %d", len(opOut), len(axOut))
	}
	for o := range opOut {
		if !axOut[o] {
			return false, "operational-only outcome " + o
		}
	}

	// Verdict comparison: pick an arbitrary reachable outcome and assert
	// its negation in a copy — VBMC at a generous K must flag it, and
	// the RA explorer must agree at the same bound.
	for o := range opOut {
		probe := buildAssertion(prog, cp, o)
		if probe == nil {
			break
		}
		vb, err := ravbmc.VBMC(probe, ravbmc.VBMCOptions{K: k})
		if err != nil || vb.Verdict == ravbmc.Inconclusive {
			return false, fmt.Sprintf("vbmc error: %v", err)
		}
		raRes := raSys2(probe, k)
		if (vb.Verdict == ravbmc.Unsafe) != raRes {
			return false, fmt.Sprintf("VBMC=%v but RA explorer unsafe=%v at K=%d", vb.Verdict, raRes, k)
		}
		if vb.Verdict == ravbmc.Unsafe {
			rec.Counter("rafuzz.vbmc_unsafe").Inc()
			if !vb.WitnessValidated {
				return false, "witness validation failed: " + vb.WitnessErr
			}
			rec.Counter("rafuzz.witnesses_validated").Inc()
		}
		break
	}
	return true, ""
}

func raSys2(p *lang.Program, k int) bool {
	res, err := ravbmc.ExploreRA(p, ravbmc.ExploreOptions{ViewBound: k, StopOnViolation: true})
	return err == nil && res.Violation
}

// buildAssertion appends an observer assertion contradicting the given
// outcome to the first process (the outcome string is parsed back; on
// any surprise the probe is skipped).
func buildAssertion(prog *lang.Program, cp *lang.CompiledProgram, outcome string) *lang.Program {
	// outcome format: proc.reg=val; ... — assert the first binding's
	// negation at the end of its process.
	var proc, reg string
	var val lang.Value
	if _, err := fmt.Sscanf(outcome, "%s", &proc); err != nil || outcome == "" {
		return nil
	}
	n, err := fmt.Sscanf(outcome, "p0.r0=%d;", &val)
	if n != 1 || err != nil {
		return nil
	}
	proc, reg = "p0", "r0"
	q := prog.Clone()
	pr := q.ProcByName(proc)
	if pr == nil {
		return nil
	}
	for _, r := range pr.Regs {
		if r == reg {
			pr.Add(lang.AssertS(lang.Ne(lang.R(reg), lang.C(val))))
			return q
		}
	}
	return nil
}

// randomProgram emits a random loop-free RA program. Every process has
// registers r0..r(nops-1); reads target fresh registers so outcomes are
// informative.
func randomProgram(rng *rand.Rand, nprocs, nops int) *lang.Program {
	if nprocs < 2 {
		nprocs = 2
	}
	if nprocs > 3 {
		nprocs = 3
	}
	vars := []string{"x", "y"}
	p := lang.NewProgram("fuzz", vars...)
	for pi := 0; pi < nprocs; pi++ {
		var regs []string
		for i := 0; i < nops; i++ {
			regs = append(regs, fmt.Sprintf("r%d", i))
		}
		pr := p.AddProc(fmt.Sprintf("p%d", pi), regs...)
		for i := 0; i < nops; i++ {
			v := vars[rng.Intn(len(vars))]
			switch rng.Intn(8) {
			case 0, 1, 2:
				pr.Add(lang.WriteC(v, lang.Value(1+rng.Intn(2))))
			case 3, 4, 5:
				pr.Add(lang.ReadS(fmt.Sprintf("r%d", i), v))
			case 6:
				pr.Add(lang.CASS(v, lang.C(lang.Value(rng.Intn(2))), lang.C(lang.Value(1+rng.Intn(2)))))
			default:
				pr.Add(lang.FenceS())
			}
		}
	}
	return p
}
