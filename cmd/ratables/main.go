// Command ratables regenerates the paper's evaluation tables (Sec. 7).
//
// Usage:
//
//	ratables -table 1            # one table
//	ratables -table all          # tables 1-8
//	ratables -table litmus       # the litmus agreement sweep
//	ratables -quick -timeout 20s # smaller sweeps, shorter per-run budget
//	ratables -table 1 -progress  # live per-run snapshots on stderr
//	ratables -table 1 -watch     # in-place live search dashboard on stderr
//	ratables -table 1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	ratables -cache -cache-disk tables.cache  # memoize conclusive cells
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"ravbmc/internal/cache"
	"ravbmc/internal/obs"
	"ravbmc/internal/tables"
	"ravbmc/internal/version"
)

func main() { os.Exit(run()) }

// run is main with an exit code, so deferred profile writers run before
// the process exits.
func run() int {
	var (
		table      = flag.String("table", "all", "1..8, litmus, or all")
		quick      = flag.Bool("quick", false, "smaller sweeps (fast regeneration)")
		timeout    = flag.Duration("timeout", 60*time.Second, "per tool-run budget (paper: 3600s)")
		stride     = flag.Int("stride", 17, "litmus: run every stride-th generated program")
		k          = flag.Int("k", 5, "litmus: view bound")
		jobs       = flag.Int("jobs", 0, "concurrent tool runs (0 = all CPUs); output is identical for any width")
		progress   = flag.Bool("progress", false, "print live per-run progress snapshots to stderr")
		progressIv = flag.Duration("progress-interval", time.Second, "interval between -progress snapshots")
		watch      = flag.Bool("watch", false, "redraw a live search dashboard on stderr (supersedes -progress)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		showVer    = flag.Bool("version", false, "print the toolchain version and exit")
		useCache   = flag.Bool("cache", false, "memoize conclusive cells in a result cache")
		cacheDisk  = flag.String("cache-disk", "", "persist the result cache to this JSONL file (implies -cache)")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ratables:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ratables:", err)
			}
		}()
	}

	cfg := tables.Config{Timeout: *timeout, Quick: *quick, Jobs: *jobs}
	if *useCache || *cacheDisk != "" {
		c, err := cache.New(cache.Config{DiskPath: *cacheDisk, Version: version.String()})
		if err != nil {
			return fail(err)
		}
		defer c.Close()
		cfg.Cache = c
	}
	if *watch {
		// Like -progress, one dashboard at a time: each run's hook
		// retires the previous run's sampler and re-anchors the shared
		// Watch below a fresh header line, so the redraw block always
		// tracks the most recently started run.
		var (
			mu      sync.Mutex
			curStop func()
		)
		w := obs.NewWatch(os.Stderr)
		cfg.Obs = func(bench, tool string) *obs.Recorder {
			mu.Lock()
			defer mu.Unlock()
			if curStop != nil {
				curStop()
			}
			fmt.Fprintf(os.Stderr, "== %s / %s\n", bench, tool)
			w.Reset()
			rec := obs.New()
			smp := obs.NewSampler(rec, 250*time.Millisecond)
			ch, _ := smp.Subscribe(16)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for p := range ch {
					w.Update(p)
				}
			}()
			curStop = func() { smp.Stop(); <-done }
			return rec
		}
		defer func() {
			mu.Lock()
			if curStop != nil {
				curStop()
			}
			mu.Unlock()
		}()
	} else if *progress {
		// One printer at a time suffices even with -jobs > 1: the hook
		// retires the previous run's printer and starts a fresh one
		// against the new run's recorder, so the snapshot stream always
		// tracks the most recently started run. Pool workers call the
		// hook concurrently, hence the mutex around the swap.
		var (
			mu  sync.Mutex
			cur *obs.Progress
		)
		cfg.Obs = func(bench, tool string) *obs.Recorder {
			mu.Lock()
			defer mu.Unlock()
			cur.Stop()
			fmt.Fprintf(os.Stderr, "== %s / %s\n", bench, tool)
			rec := obs.New()
			cur = obs.NewProgress(os.Stderr, rec, *progressIv)
			return rec
		}
		defer func() { mu.Lock(); cur.Stop(); mu.Unlock() }()
	}
	gens := tables.All()

	switch *table {
	case "all":
		keys := make([]string, 0, len(gens))
		for k := range gens {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			fmt.Println(gens[key](cfg).Render())
		}
		fmt.Println(tables.LitmusSweep(3, *stride, *k, *jobs).Render())
	case "litmus":
		fmt.Println(tables.LitmusSweep(3, *stride, *k, *jobs).Render())
	default:
		gen, ok := gens[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "ratables: unknown table %q\n", *table)
			return 2
		}
		fmt.Println(gen(cfg).Render())
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "ratables:", err)
	return 2
}
