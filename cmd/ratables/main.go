// Command ratables regenerates the paper's evaluation tables (Sec. 7).
//
// Usage:
//
//	ratables -table 1            # one table
//	ratables -table all          # tables 1-8
//	ratables -table litmus       # the litmus agreement sweep
//	ratables -quick -timeout 20s # smaller sweeps, shorter per-run budget
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ravbmc/internal/tables"
)

func main() {
	var (
		table   = flag.String("table", "all", "1..8, litmus, or all")
		quick   = flag.Bool("quick", false, "smaller sweeps (fast regeneration)")
		timeout = flag.Duration("timeout", 60*time.Second, "per tool-run budget (paper: 3600s)")
		stride  = flag.Int("stride", 17, "litmus: run every stride-th generated program")
		k       = flag.Int("k", 5, "litmus: view bound")
	)
	flag.Parse()

	cfg := tables.Config{Timeout: *timeout, Quick: *quick}
	gens := tables.All()

	switch *table {
	case "all":
		keys := make([]string, 0, len(gens))
		for k := range gens {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			fmt.Println(gens[key](cfg).Render())
		}
		fmt.Println(tables.LitmusSweep(3, *stride, *k).Render())
	case "litmus":
		fmt.Println(tables.LitmusSweep(3, *stride, *k).Render())
	default:
		gen, ok := gens[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "ratables: unknown table %q\n", *table)
			os.Exit(2)
		}
		fmt.Println(gen(cfg).Render())
	}
}
