// Command vbmcd is the verification service daemon: an HTTP/JSON front
// end over the engines with a content-addressed result cache, bounded
// admission and graceful drain.
//
// Usage:
//
//	vbmcd -addr 127.0.0.1:8080 -workers 4 -queue 64
//	vbmcd -addr 127.0.0.1:0 -disk /var/lib/vbmcd/cache.jsonl
//
// Endpoints (see docs/SERVICE.md):
//
//	POST /v1/verify     one verification at the request's bounds
//	POST /v1/mink       smallest K with an UNSAFE verdict
//	POST /v1/batch      a whole corpus in one call (JSON or SSE reply)
//	GET  /healthz       liveness + drain state
//	GET  /readyz        readiness: 503 while draining
//	GET  /v1/version    toolchain version (the one in every cache key)
//	GET  /metrics       Prometheus text metrics (latency histograms included)
//	GET  /v1/runs       recent run ledger (summaries, newest first)
//	GET  /v1/runs/{id}  one run's full record: timings, span tree, slow dump
//	GET  /v1/runs/{id}/events  SSE search-telemetry stream (live, replayed when done)
//	GET  /v1/cache/{key}  internal: peer cache-fill read by digest
//
// Several daemons become one horizontally scaled service with -node-id
// and -peers: every node is started with the same static peer list, a
// consistent-hash ring over the cache key gives each request one owner
// shard, non-owners forward to it (falling back to local execution when
// it is down or draining), and cold local misses consult the owner's
// cache before computing. See "Running a cluster" in docs/SERVICE.md:
//
//	vbmcd -addr :8081 -node-id n1 -peers n1=http://h1:8081,n2=http://h2:8082
//
// On SIGINT/SIGTERM the daemon stops admitting work, waits up to
// -drain-grace for in-flight verifications, then hard-cancels the
// stragglers. The first stdout line is "vbmcd listening on http://..."
// so wrappers can scrape the bound address (useful with -addr :0).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ravbmc/internal/cache"
	"ravbmc/internal/cluster"
	"ravbmc/internal/obs"
	"ravbmc/internal/serve"
	"ravbmc/internal/version"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		workers    = flag.Int("workers", 0, "concurrent verifications (0 = all CPUs)")
		queue      = flag.Int("queue", 64, "requests allowed to wait beyond the workers; overflow is rejected with 429")
		cacheBytes = flag.Int64("cache-bytes", 0, "in-memory cache budget in bytes (0 = 64 MiB, negative = unlimited)")
		disk       = flag.String("disk", "", "JSONL disk store path; entries survive restarts (empty = memory only)")
		defTimeout = flag.Duration("default-timeout", 60*time.Second, "compute deadline for requests that name none")
		maxTimeout = flag.Duration("max-timeout", 10*time.Minute, "cap on a request's compute deadline")
		jobs       = flag.Int("jobs", 0, "portfolio pool width (0 = engine default)")
		searchWkrs = flag.Int("search-workers", 0, "work-stealing workers inside each single search (0 = serial); -workers admission slots each running this many workers occupy their product in CPUs at saturation")
		reduce     = flag.Bool("reduce", false, "source-DPOR reduction in every vbmc request's SC backend (verdict-neutral; falls back to the full search where inapplicable)")
		tmai       = flag.Bool("tmai", false, "thread-modular pre-pass on vbmc requests: programs it proves get an unbounded SAFE that the cache reuses at every K")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "how long a shutdown waits for in-flight work before hard-cancelling")
		ledgerSize = flag.Int("ledger", 256, "run records retained in memory behind /v1/runs (0 = default)")
		runLog     = flag.String("run-log", "", "append one JSON line per completed run to this file (empty = off)")
		slowRun    = flag.Duration("slow-run", 0, "flight-recorder threshold: dump a still-running request's span tree into its ledger entry after this long (0 = off)")
		sampleIv   = flag.Duration("sample-interval", 500*time.Millisecond, "search-telemetry sampling cadence for live runs (SSE stream and ledger series)")
		logJSON    = flag.Bool("log-json", false, "emit request logs as JSON instead of key=value text")
		showVer    = flag.Bool("version", false, "print the toolchain version and exit")

		nodeID    = flag.String("node-id", "", "this node's ID in a cluster; requires -peers and must appear in it")
		peersFlag = flag.String("peers", "", "static cluster membership as id=url pairs, comma separated, this node included (every node must be started with the same list)")
		probeIv   = flag.Duration("probe-interval", 2*time.Second, "peer health probe cadence in a cluster")
		batchWkrs = flag.Int("batch-workers", 0, "concurrent /v1/batch items on this coordinator (0 = 4x workers)")
	)
	flag.CommandLine.Init(os.Args[0], flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err == flag.ErrHelp {
		return 0
	} else if err != nil {
		return 3
	}
	if *showVer {
		fmt.Println(version.String())
		return 0
	}

	rec := obs.New()
	c, err := cache.New(cache.Config{MaxBytes: *cacheBytes, DiskPath: *disk, Obs: rec})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbmcd:", err)
		return 3
	}
	defer c.Close()

	// Request logs go to stderr (stdout's first line is the scrape-able
	// listen address); every line carries the request's run ID.
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	var audit io.Writer
	if *runLog != "" {
		f, err := os.OpenFile(*runLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vbmcd:", err)
			return 3
		}
		defer f.Close()
		audit = f
	}

	// Cluster mode: -node-id and -peers come together or not at all.
	var cl *cluster.Cluster
	if (*nodeID == "") != (*peersFlag == "") {
		fmt.Fprintln(os.Stderr, "vbmcd: -node-id and -peers must be set together")
		return 3
	}
	if *nodeID != "" {
		peers, err := cluster.ParsePeers(*peersFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vbmcd:", err)
			return 3
		}
		cl, err = cluster.New(cluster.Config{
			Self: *nodeID, Peers: peers,
			Probe: cluster.ProbeConfig{Interval: *probeIv},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vbmcd:", err)
			return 3
		}
		cl.Start()
		defer cl.Stop()
	}

	s := serve.New(serve.Config{
		Cache: c, Workers: *workers, Queue: *queue,
		DefaultTimeout: *defTimeout, MaxTimeout: *maxTimeout,
		Jobs: *jobs, SearchWorkers: *searchWkrs,
		Reduce: *reduce, TMAI: *tmai, Obs: rec,
		Log: slog.New(handler), LedgerSize: *ledgerSize,
		RunLog: audit, SlowRunThreshold: *slowRun,
		SampleInterval: *sampleIv,
		Cluster:        cl, BatchWorkers: *batchWkrs,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbmcd:", err)
		return 3
	}
	fmt.Printf("vbmcd listening on http://%s\n", ln.Addr())
	fmt.Printf("vbmcd version %s\n", c.Version())
	if cl != nil {
		fmt.Printf("vbmcd cluster node %s (%d peers)\n", cl.Self(), len(cl.Peers()))
	}

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "vbmcd: %s: draining (grace %s)\n", sig, *drainGrace)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "vbmcd:", err)
		return 1
	}

	// Drain: refuse new verifications, let in-flight ones finish inside
	// the grace period, then hard-cancel whatever is left and shut the
	// listener down.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "vbmcd: drain grace expired; cancelling in-flight work")
	}
	s.Close()
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
	}
	<-errc // Serve has returned
	fmt.Fprintln(os.Stderr, "vbmcd: drained, bye")
	return 0
}
