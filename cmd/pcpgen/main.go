// Command pcpgen builds the paper's Theorem 4.1 reduction: it turns a
// PCP instance into the four-process RA program of Fig. 3 and can run
// the bounded RA explorer on the "all processes reach term" query.
//
// Usage:
//
//	pcpgen -u a,ba -v ab,a            # print the generated program
//	pcpgen -u a -v a -run             # also search for a terminating run
//	pcpgen -u a,ba -v ab,a -solve 6   # brute-force the instance itself
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ravbmc/internal/lang"
	"ravbmc/internal/pcp"
	"ravbmc/internal/ra"
	"ravbmc/internal/version"
)

func main() {
	var (
		uList     = flag.String("u", "", "comma-separated U words")
		vList     = flag.String("v", "", "comma-separated V words")
		run       = flag.Bool("run", false, "run the RA explorer on the reduction")
		solve     = flag.Int("solve", 0, "brute-force the instance up to this many indices")
		maxSteps  = flag.Int("max-steps", 120, "explorer step bound")
		maxStates = flag.Int("max-states", 2_000_000, "explorer state cap")
		showVer   = flag.Bool("version", false, "print the toolchain version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return
	}

	ins := pcp.Instance{U: split(*uList), V: split(*vList)}
	if err := ins.Validate(); err != nil {
		fail(err)
	}
	if *solve > 0 {
		if sol, ok := ins.Solve(*solve); ok {
			u, v, _ := ins.Concat(sol)
			fmt.Printf("solution %v: %s == %s\n", sol, u, v)
		} else {
			fmt.Printf("no solution of length <= %d\n", *solve)
		}
		return
	}
	prog, err := ins.Reduction()
	if err != nil {
		fail(err)
	}
	if !*run {
		fmt.Print(prog)
		return
	}
	sys := ra.NewSystem(lang.MustCompile(prog))
	res := sys.Explore(ra.Options{
		ViewBound:    -1,
		MaxSteps:     *maxSteps,
		MaxStates:    *maxStates,
		TargetLabels: pcp.TargetLabels(),
	})
	if res.TargetReached {
		fmt.Printf("all processes reach term: the instance is solvable (%d states)\n", res.States)
		return
	}
	conclusive := ""
	if !res.Exhausted {
		conclusive = " within the given bounds"
	}
	fmt.Printf("term not reachable%s (%d states)\n", conclusive, res.States)
	os.Exit(1)
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pcpgen:", err)
	os.Exit(2)
}
