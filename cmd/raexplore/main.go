// Command raexplore runs a program directly under the RA operational
// semantics: either the exhaustive (optionally view-bounded) explorer,
// or one of the stateless-model-checking baselines (tracer, cdsc, rcmc,
// random).
//
// Usage:
//
//	raexplore -file prog.ra -mode exhaustive [-view-bound 2]
//	raexplore -bench peterson_0 -mode tracer -l 2 -timeout 30s
//	raexplore -bench peterson_0 -mode exhaustive -json
//	raexplore -bench peterson_0 -mode exhaustive -progress
//	raexplore -bench peterson_0 -trace-out w.jsonl -trace-format jsonl
//
// The traces raexplore exports are RA-level already (no translation is
// involved); -trace-out additionally captures per-event view snapshots.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ravbmc"
	"ravbmc/internal/benchmarks"
	"ravbmc/internal/obs"
	"ravbmc/internal/trace"
	"ravbmc/internal/version"
)

func main() {
	var (
		file       = flag.String("file", "", "program source file")
		bench      = flag.String("bench", "", "built-in benchmark name")
		mode       = flag.String("mode", "exhaustive", "exhaustive | tracer | cdsc | rcmc | random | robust | tmai")
		vb         = flag.Int("view-bound", -1, "view-switch bound for exhaustive mode (-1 = unbounded)")
		l          = flag.Int("l", 2, "loop unrolling bound")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
		showTr     = flag.Bool("trace", false, "print the counterexample trace")
		walks      = flag.Int("walks", 1000, "random mode: number of walks")
		exactDedup = flag.Bool("exact-dedup", false, "exhaustive mode: exact state keys in the visited set instead of 64-bit fingerprints")
		swWorkers  = flag.Int("workers", 0, "exhaustive mode: work-stealing workers (0 = serial, negative = all CPUs); the verdict is identical at any width")
		stateDedup = flag.Bool("state-dedup", false, "tracer/cdsc/rcmc modes: prune states already fully explored (stateful DFS with state hashing)")
		jsonOut    = flag.Bool("json", false, "emit a JSON run report on stdout instead of the summary line")
		progress   = flag.Bool("progress", false, "print periodic live progress snapshots to stderr")
		progressIv = flag.Duration("progress-interval", time.Second, "interval between -progress snapshots")
		traceOut   = flag.String("trace-out", "", "write the counterexample trace to this file")
		traceFmt   = flag.String("trace-format", "jsonl", "trace export format: jsonl | chrome | text")
		showVer    = flag.Bool("version", false, "print the toolchain version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return
	}

	prog, err := load(*file, *bench)
	if err != nil {
		fail(err)
	}
	format, err := trace.ParseFormat(*traceFmt)
	if err != nil {
		fail(err)
	}
	rec := obs.New()
	// progressStop runs before every exit path; main os.Exit()s directly
	// on violations, so a defer alone would be skipped. Stop is
	// idempotent and nil-safe.
	if *progress {
		p := obs.NewProgress(os.Stderr, rec, *progressIv)
		rec.SetSink(p)
		progressStop = p.Stop
	}
	defer progressStop()

	if *mode == "tmai" {
		// Thread-modular abstract interpretation: a SAFE here is
		// unbounded (every K, every L — loops need no unrolling), an
		// UNKNOWN is the abstraction giving up, never a bug.
		res := ravbmc.TMAI(prog, ravbmc.TMAIOptions{})
		verdict := "UNKNOWN"
		if res.Verdict == ravbmc.TMAISafe {
			verdict = "SAFE"
		}
		if *jsonOut {
			emitJSON(rec, *mode, prog.Name, verdict, *l)
		} else if res.Verdict == ravbmc.TMAISafe {
			fmt.Printf("%s: SAFE (unbounded: holds for every K, %d interference rounds)\n", prog.Name, res.Rounds)
		} else {
			fmt.Printf("%s: UNKNOWN (%s)\n", prog.Name, res.Detail)
		}
		return
	}

	if *mode == "robust" {
		res, err := ravbmc.CheckRobustness(prog, *l)
		if err != nil {
			fail(err)
		}
		verdict := "ROBUST"
		if !res.Robust {
			verdict = "NOT ROBUST"
		}
		if *jsonOut {
			emitJSON(rec, *mode, prog.Name, verdict, *l)
		} else if res.Robust {
			fmt.Printf("%s: ROBUST (%d outcomes under RA and SC)\n", prog.Name, res.SCOutcomes)
		} else {
			fmt.Printf("%s: NOT ROBUST (%d RA vs %d SC outcomes)\n", prog.Name, res.RAOutcomes, res.SCOutcomes)
			for _, o := range res.WeakOutcomes {
				fmt.Println("  weak:", o)
			}
		}
		if !res.Robust {
			progressStop()
			os.Exit(1)
		}
		return
	}

	// View snapshots cost an allocation per successor, so capture them
	// only when the trace is exported.
	capture := *traceOut != ""

	var violation, exhausted, timedOut bool
	var states int
	var transitions int64
	var tr *trace.Trace
	if *mode == "exhaustive" {
		src := ravbmc.Unroll(prog, *l)
		opts := ravbmc.ExploreOptions{
			ViewBound: *vb, StopOnViolation: true, ExactDedup: *exactDedup,
			Workers: *swWorkers, Obs: rec, CaptureViews: capture,
		}
		if *timeout > 0 {
			opts.Deadline = time.Now().Add(*timeout)
		}
		res, err := ravbmc.ExploreRA(src, opts)
		if err != nil {
			fail(err)
		}
		violation, exhausted, timedOut = res.Violation, res.Exhausted, res.TimedOut
		states, transitions, tr = res.States, int64(res.Transitions), res.Trace
	} else {
		alg, ok := map[string]ravbmc.SMCAlgorithm{
			"tracer": ravbmc.AlgorithmTracer,
			"cdsc":   ravbmc.AlgorithmCDS,
			"rcmc":   ravbmc.AlgorithmRCMC,
			"random": ravbmc.AlgorithmRandom,
		}[*mode]
		if !ok {
			fail(fmt.Errorf("unknown mode %q", *mode))
		}
		res, err := ravbmc.SMC(prog, ravbmc.SMCOptions{
			Algorithm: alg, Unroll: *l, Timeout: *timeout, Walks: *walks,
			StateDedup: *stateDedup, Obs: rec, CaptureViews: capture,
		})
		if err != nil {
			fail(err)
		}
		violation, exhausted, timedOut = res.Violation, res.Exhausted, res.TimedOut
		states, transitions, tr = res.Executions, res.Transitions, res.Trace
	}

	verdict := "SAFE"
	switch {
	case violation:
		verdict = "UNSAFE"
	case timedOut:
		verdict = "T.O"
	case !exhausted:
		verdict = "INCONCLUSIVE"
	}
	if *jsonOut {
		emitJSON(rec, *mode, prog.Name, verdict, *l)
	} else {
		fmt.Printf("%s: %s (%d states/executions, %d transitions)\n", prog.Name, verdict, states, transitions)
	}
	if violation && tr != nil {
		if *showTr {
			fmt.Print(tr)
		}
		if *traceOut != "" {
			meta := trace.Meta{Program: prog.Name, Engine: "ra"}
			if err := tr.WriteFile(*traceOut, format, meta); err != nil {
				fail(err)
			}
		}
	}
	if violation {
		progressStop()
		os.Exit(1)
	}
}

// progressStop retires the -progress printer; exit paths call it before
// os.Exit so the last snapshot line is not cut mid-write.
var progressStop = func() {}

// emitJSON prints the structured run report, identified like the vbmc
// one so BENCH sweeps can mix tools.
func emitJSON(rec *obs.Recorder, mode, bench, verdict string, l int) {
	rep := rec.Report()
	rep.Tool = "raexplore:" + mode
	rep.Bench = bench
	rep.Verdict = verdict
	rep.L = l
	os.Stdout.Write(append(rep.JSON(), '\n'))
}

func load(file, bench string) (*ravbmc.Program, error) {
	switch {
	case file != "" && bench != "":
		return nil, fmt.Errorf("give either -file or -bench, not both")
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return ravbmc.Parse(string(src))
	case bench != "":
		return benchmarks.ByName(bench)
	}
	return nil, fmt.Errorf("one of -file or -bench is required")
}

func fail(err error) {
	progressStop()
	fmt.Fprintln(os.Stderr, "raexplore:", err)
	os.Exit(3)
}
