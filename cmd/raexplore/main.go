// Command raexplore runs a program directly under the RA operational
// semantics: either the exhaustive (optionally view-bounded) explorer,
// or one of the stateless-model-checking baselines (tracer, cdsc, rcmc,
// random).
//
// Usage:
//
//	raexplore -file prog.ra -mode exhaustive [-view-bound 2]
//	raexplore -bench peterson_0 -mode tracer -l 2 -timeout 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ravbmc"
	"ravbmc/internal/benchmarks"
)

func main() {
	var (
		file    = flag.String("file", "", "program source file")
		bench   = flag.String("bench", "", "built-in benchmark name")
		mode    = flag.String("mode", "exhaustive", "exhaustive | tracer | cdsc | rcmc | random | robust")
		vb      = flag.Int("view-bound", -1, "view-switch bound for exhaustive mode (-1 = unbounded)")
		l       = flag.Int("l", 2, "loop unrolling bound")
		timeout = flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
		showTr  = flag.Bool("trace", false, "print the counterexample trace")
		walks   = flag.Int("walks", 1000, "random mode: number of walks")
	)
	flag.Parse()

	prog, err := load(*file, *bench)
	if err != nil {
		fail(err)
	}

	if *mode == "robust" {
		res, err := ravbmc.CheckRobustness(prog, *l)
		if err != nil {
			fail(err)
		}
		if res.Robust {
			fmt.Printf("%s: ROBUST (%d outcomes under RA and SC)\n", prog.Name, res.SCOutcomes)
			return
		}
		fmt.Printf("%s: NOT ROBUST (%d RA vs %d SC outcomes)\n", prog.Name, res.RAOutcomes, res.SCOutcomes)
		for _, o := range res.WeakOutcomes {
			fmt.Println("  weak:", o)
		}
		os.Exit(1)
	}

	if *mode == "exhaustive" {
		src := ravbmc.Unroll(prog, *l)
		opts := ravbmc.ExploreOptions{ViewBound: *vb, StopOnViolation: true}
		if *timeout > 0 {
			opts.Deadline = time.Now().Add(*timeout)
		}
		res, err := ravbmc.ExploreRA(src, opts)
		if err != nil {
			fail(err)
		}
		report(prog.Name, res.Violation, res.Exhausted, res.TimedOut, res.States, int64(res.Transitions))
		if res.Violation && *showTr && res.Trace != nil {
			fmt.Print(res.Trace)
		}
		return
	}

	alg, ok := map[string]ravbmc.SMCAlgorithm{
		"tracer": ravbmc.AlgorithmTracer,
		"cdsc":   ravbmc.AlgorithmCDS,
		"rcmc":   ravbmc.AlgorithmRCMC,
		"random": ravbmc.AlgorithmRandom,
	}[*mode]
	if !ok {
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	res, err := ravbmc.SMC(prog, ravbmc.SMCOptions{
		Algorithm: alg, Unroll: *l, Timeout: *timeout, Walks: *walks,
	})
	if err != nil {
		fail(err)
	}
	report(prog.Name, res.Violation, res.Exhausted, res.TimedOut, res.Executions, res.Transitions)
	if res.Violation && *showTr && res.Trace != nil {
		fmt.Print(res.Trace)
	}
}

func report(name string, violation, exhausted, timedOut bool, states int, transitions int64) {
	verdict := "SAFE"
	switch {
	case violation:
		verdict = "UNSAFE"
	case timedOut:
		verdict = "T.O"
	case !exhausted:
		verdict = "INCONCLUSIVE"
	}
	fmt.Printf("%s: %s (%d states/executions, %d transitions)\n", name, verdict, states, transitions)
	if violation {
		os.Exit(1)
	}
}

func load(file, bench string) (*ravbmc.Program, error) {
	switch {
	case file != "" && bench != "":
		return nil, fmt.Errorf("give either -file or -bench, not both")
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return ravbmc.Parse(string(src))
	case bench != "":
		return benchmarks.ByName(bench)
	}
	return nil, fmt.Errorf("one of -file or -bench is required")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "raexplore:", err)
	os.Exit(3)
}
