// Command vbmc is the view-bounded model checker of the paper: it takes
// a concurrent program in the language of internal/lang (or the name of
// a built-in benchmark), translates it to SC under the view bound K, and
// model-checks the translation with the context-bounded backend.
//
// Usage:
//
//	vbmc -k 2 -l 2 -file prog.ra [-trace] [-contexts N] [-timeout 60s]
//	vbmc -k 2 -l 2 -bench peterson_0(3)
//	vbmc -k 2 -l 2 -bench peterson_0(3) -json          # machine-readable run report
//	vbmc -k 2 -l 2 -bench dekker -trace-out w.jsonl    # export the validated witness
//	vbmc -k 2 -l 2 -bench dekker -trace-out w.json -trace-format chrome
//	vbmc -k 2 -l 2 -bench peterson_0(3) -progress      # live snapshots on stderr
//	vbmc -k 2 -l 2 -bench peterson_0(3) -cpuprofile cpu.pprof
//	vbmc -auto-k 4 -jobs 4 -bench dekker               # probe K=0..4 concurrently
//	vbmc -k 2 -l 2 -bench dekker -portfolio            # cross-check all engines
//
// On UNSAFE the witness is the source-level RA trace: the backend's
// counterexample on the translated program, lifted back to the source
// statements and re-executed (validated) under the RA operational
// semantics. -trace prints it, -trace-out exports it (jsonl, chrome
// trace-event, or text; see docs/WITNESS.md).
//
// Exit codes:
//
//	0  SAFE
//	1  UNSAFE
//	2  INCONCLUSIVE (state cap or timeout hit before covering the space)
//	3  usage or input error (bad flags, unreadable file, parse or
//	   validation failure)
//	4  portfolio disagreement (-portfolio only): two engines produced
//	   contradictory verdicts, i.e. one of them has a bug
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ravbmc"
	"ravbmc/internal/benchmarks"
	"ravbmc/internal/core"
	"ravbmc/internal/diff"
	"ravbmc/internal/obs"
	"ravbmc/internal/trace"
	"ravbmc/internal/version"
)

func main() { os.Exit(run()) }

// run is main with an exit code, so deferred profile writers run before
// the process exits.
func run() int {
	var (
		k          = flag.Int("k", 2, "view-switch budget K")
		l          = flag.Int("l", 2, "loop unrolling bound L")
		file       = flag.String("file", "", "program source file")
		bench      = flag.String("bench", "", "built-in benchmark name, e.g. peterson_1(4)")
		showTr     = flag.Bool("trace", false, "print the counterexample witness trace")
		summary    = flag.Bool("summary", false, "print the RA-level summary of the counterexample")
		traceOut   = flag.String("trace-out", "", "write the witness trace to this file")
		traceFmt   = flag.String("trace-format", "jsonl", "witness export format: jsonl | chrome | text")
		contexts   = flag.Int("contexts", 0, "SC context bound (0 = K+n, negative = unbounded)")
		exactDedup = flag.Bool("exact-dedup", false, "use exact state keys in the visited set instead of 64-bit fingerprints")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
		emit       = flag.Bool("emit", false, "print the translated SC program instead of checking")
		autoK      = flag.Int("auto-k", -1, "search for the minimal K up to this bound instead of using -k")
		jobs       = flag.Int("jobs", 0, "concurrent runs for -auto-k and -portfolio (0 = all CPUs, 1 = serial)")
		swWorkers  = flag.Int("workers", 0, "work-stealing workers inside each backend search (0 = serial, negative = all CPUs); the verdict is identical at any width")
		reduce     = flag.Bool("reduce", false, "source-DPOR reduction in the SC backend: explore only representative interleavings (verdict-neutral; forces an unbounded context bound, falls back to the full search where inapplicable)")
		tmai       = flag.Bool("tmai", false, "thread-modular pre-pass: if the abstraction proves the program, report SAFE (unbounded, for every K) without searching")
		portfolio  = flag.Bool("portfolio", false, "run every engine on the program and cross-check the verdicts")
		jsonOut    = flag.Bool("json", false, "emit a JSON run report on stdout instead of the summary line")
		progress   = flag.Bool("progress", false, "print periodic live progress snapshots to stderr")
		progressIv = flag.Duration("progress-interval", time.Second, "interval between -progress snapshots")
		watch      = flag.Bool("watch", false, "redraw a live search dashboard on stderr (supersedes -progress)")
		sampleIv   = flag.Duration("sample-interval", 0, "search-telemetry sampling cadence (0 = off; -watch defaults to 250ms); sampled series lands in the -json report")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		spanOut    = flag.String("span-out", "", "write the run's span tree (phase tracing) to this file")
		spanFmt    = flag.String("span-format", "jsonl", "span export format: jsonl | chrome")
		remote     = flag.String("remote", "", "vbmcd base URL (e.g. http://127.0.0.1:8080): verify via the daemon's cache instead of locally")
		showVer    = flag.Bool("version", false, "print the toolchain version and exit")
	)
	// Parse manually so flag errors exit 3 (usage error) rather than the
	// flag package's default 2, which would collide with INCONCLUSIVE.
	flag.CommandLine.Init(os.Args[0], flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err == flag.ErrHelp {
		return 0
	} else if err != nil {
		return 3
	}
	// An explicitly passed -workers (any value, 0 included) is stamped
	// into the JSON report's config, so bench sweeps over pool widths
	// are self-describing — including their serial baseline.
	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	if *showVer {
		fmt.Println(version.String())
		return 0
	}
	if *remote != "" {
		return runRemote(remoteOptions{
			base: *remote, file: *file, bench: *bench, portfolio: *portfolio,
			k: *k, l: *l, autoK: *autoK, contexts: *contexts,
			exactDedup: *exactDedup, timeout: *timeout,
			jsonOut: *jsonOut, showTrace: *showTr, traceOut: *traceOut, traceFmt: *traceFmt,
			watch: *watch,
		})
	}

	prog, err := load(*file, *bench)
	if err != nil {
		return fail(err)
	}
	if *emit {
		unrolled := ravbmc.Unroll(prog, *l)
		translated, err := ravbmc.Translate(unrolled, *k)
		if err != nil {
			return fail(err)
		}
		fmt.Print(translated)
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vbmc:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vbmc:", err)
			}
		}()
	}

	rec := obs.New()
	if *spanOut != "" {
		// Tracing retains the span tree; the plain recorder only keeps
		// phase totals.
		rec = obs.NewTracing()
		defer func() {
			meta := obs.SpanMeta{Tool: "vbmc", Program: prog.Name}
			if err := obs.WriteSpansFile(*spanOut, *spanFmt, meta, rec.Spans()); err != nil {
				fmt.Fprintln(os.Stderr, "vbmc:", err)
			}
		}()
	}
	if *progress && !*watch {
		p := obs.NewProgress(os.Stderr, rec, *progressIv)
		rec.SetSink(p) // phase transitions print immediately, not just on ticks
		defer p.Stop()
	}
	// The sampler runs whenever a cadence is configured; -watch implies
	// one and additionally renders the samples as an in-place dashboard.
	interval := *sampleIv
	if *watch && interval <= 0 {
		interval = 250 * time.Millisecond
	}
	var smp *obs.Sampler
	watchDone := make(chan struct{})
	if interval > 0 {
		smp = obs.NewSampler(rec, interval)
		if *watch {
			ch, _ := smp.Subscribe(16)
			go func() {
				defer close(watchDone)
				w := obs.NewWatch(os.Stderr)
				for p := range ch {
					w.Update(p)
				}
			}()
		} else {
			close(watchDone)
		}
	} else {
		close(watchDone)
	}
	// stopSampling is idempotent; it runs before the report is rendered
	// (so the series is final) and again on early-exit paths via defer.
	stopSampling := func() {
		smp.Stop()
		<-watchDone
	}
	defer stopSampling()

	if *portfolio {
		rep := diff.Run(prog, diff.Options{
			K: *k, Unroll: *l, Timeout: *timeout, Jobs: *jobs,
		})
		fmt.Print(rep.Render())
		if !rep.Agree() {
			return 4
		}
		switch rep.Verdict() {
		case diff.Unsafe:
			return 1
		case diff.Safe:
			return 0
		}
		return 2
	}

	start := time.Now()
	opts := ravbmc.VBMCOptions{
		K: *k, Unroll: *l, MaxContexts: *contexts, Timeout: *timeout,
		ExactDedup: *exactDedup, Workers: *swWorkers,
		Reduce: *reduce, TMAI: *tmai, Obs: rec,
	}
	var res ravbmc.VBMCResult
	if *autoK >= 0 {
		var kFound int
		kFound, res, err = core.FindMinKParallel(context.Background(), prog, *autoK, opts, *jobs)
		if err != nil {
			return fail(err)
		}
		*k = kFound
	} else {
		res, err = ravbmc.VBMC(prog, opts)
		if err != nil {
			return fail(err)
		}
	}

	stopSampling()
	if *jsonOut {
		rep := res.Report
		if rep == nil {
			rep = rec.Report()
			rep.Verdict = res.Verdict.String()
			rep.K, rep.L = *k, *l
		}
		rep.Tool = "vbmc"
		rep.Bench = prog.Name
		rep.Search = smp.Series()
		if *traceOut != "" || *spanOut != "" || smp != nil || workersSet || *reduce || *tmai {
			rep.Config = map[string]string{}
			if workersSet {
				rep.Config["workers"] = fmt.Sprint(*swWorkers)
			}
			if *reduce {
				rep.Config["reduce"] = "enabled"
			}
			if *tmai {
				rep.Config["tmai"] = "enabled"
			}
			if *traceOut != "" {
				rep.Config["trace"] = "enabled"
				rep.Config["trace_format"] = *traceFmt
			}
			if *spanOut != "" {
				rep.Config["spans"] = "enabled"
				rep.Config["span_format"] = *spanFmt
			}
			if smp != nil {
				rep.Config["sampling"] = "enabled"
				rep.Config["sample_interval"] = interval.String()
			}
		}
		os.Stdout.Write(append(rep.JSON(), '\n'))
	} else if res.Unbounded {
		fmt.Printf("%s: %s (unbounded: proved for every K by the thread-modular pre-pass, %.3fs)\n",
			prog.Name, res.Verdict, time.Since(start).Seconds())
	} else {
		fmt.Printf("%s: %s (K=%d, L=%d, contexts<=%d, %d states, %d transitions, %.3fs)\n",
			prog.Name, res.Verdict, *k, *l, res.ContextBound, res.States, res.Transitions,
			time.Since(start).Seconds())
	}
	if res.Verdict == ravbmc.Unsafe {
		// Every violation's witness is lifted to a source-level RA trace
		// and replay-validated; a failure here means the lifted trace did
		// not re-execute to the violation and the raw SC trace is all we
		// can offer.
		if !res.WitnessValidated {
			fmt.Fprintf(os.Stderr, "vbmc: witness validation failed: %s\n", res.WitnessErr)
		}
		witness := res.Witness
		if witness == nil {
			witness = res.Trace
		}
		if res.Trace != nil && *summary {
			fmt.Print(core.SummarizeTrace(res.Trace))
		}
		if *showTr && witness != nil {
			fmt.Print(witness)
		}
		if *traceOut != "" && witness != nil {
			format, err := trace.ParseFormat(*traceFmt)
			if err != nil {
				return fail(err)
			}
			validated := res.WitnessValidated
			meta := trace.Meta{
				Program: prog.Name, Engine: "replay", K: *k,
				Validated: &validated,
			}
			if res.Witness == nil {
				meta.Engine = "sc"
			}
			if err := witness.WriteFile(*traceOut, format, meta); err != nil {
				return fail(err)
			}
		}
	}
	switch res.Verdict {
	case ravbmc.Unsafe:
		return 1
	case ravbmc.Inconclusive:
		return 2
	}
	return 0
}

func load(file, bench string) (*ravbmc.Program, error) {
	switch {
	case file != "" && bench != "":
		return nil, fmt.Errorf("give either -file or -bench, not both")
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return ravbmc.Parse(string(src))
	case bench != "":
		return benchmarks.ByName(bench)
	}
	return nil, fmt.Errorf("one of -file or -bench is required")
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "vbmc:", err)
	return 3
}
