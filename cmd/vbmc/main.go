// Command vbmc is the view-bounded model checker of the paper: it takes
// a concurrent program in the language of internal/lang (or the name of
// a built-in benchmark), translates it to SC under the view bound K, and
// model-checks the translation with the context-bounded backend.
//
// Usage:
//
//	vbmc -k 2 -l 2 -file prog.ra [-trace] [-contexts N] [-timeout 60s]
//	vbmc -k 2 -l 2 -bench peterson_0(3)
//
// The exit code is 1 for UNSAFE, 2 for INCONCLUSIVE, 0 for SAFE.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ravbmc"
	"ravbmc/internal/benchmarks"
	"ravbmc/internal/core"
)

func main() {
	var (
		k        = flag.Int("k", 2, "view-switch budget K")
		l        = flag.Int("l", 2, "loop unrolling bound L")
		file     = flag.String("file", "", "program source file")
		bench    = flag.String("bench", "", "built-in benchmark name, e.g. peterson_1(4)")
		showTr   = flag.Bool("trace", false, "print the full counterexample trace")
		summary  = flag.Bool("summary", false, "print the RA-level summary of the counterexample")
		contexts = flag.Int("contexts", 0, "SC context bound (0 = K+n, negative = unbounded)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
		emit     = flag.Bool("emit", false, "print the translated SC program instead of checking")
		autoK    = flag.Int("auto-k", -1, "search for the minimal K up to this bound instead of using -k")
	)
	flag.Parse()

	prog, err := load(*file, *bench)
	if err != nil {
		fail(err)
	}
	if *emit {
		unrolled := ravbmc.Unroll(prog, *l)
		translated, err := ravbmc.Translate(unrolled, *k)
		if err != nil {
			fail(err)
		}
		fmt.Print(translated)
		return
	}
	start := time.Now()
	var res ravbmc.VBMCResult
	if *autoK >= 0 {
		var kFound int
		kFound, res, err = core.FindMinK(prog, *autoK, ravbmc.VBMCOptions{
			Unroll: *l, MaxContexts: *contexts, Timeout: *timeout,
		})
		if err != nil {
			fail(err)
		}
		*k = kFound
	} else {
		res, err = ravbmc.VBMC(prog, ravbmc.VBMCOptions{
			K: *k, Unroll: *l, MaxContexts: *contexts, Timeout: *timeout,
		})
		if err != nil {
			fail(err)
		}
	}
	fmt.Printf("%s: %s (K=%d, L=%d, contexts<=%d, %d states, %d transitions, %.3fs)\n",
		prog.Name, res.Verdict, *k, *l, res.ContextBound, res.States, res.Transitions,
		time.Since(start).Seconds())
	if res.Verdict == ravbmc.Unsafe && res.Trace != nil {
		if *summary {
			fmt.Print(core.SummarizeTrace(res.Trace))
		}
		if *showTr {
			fmt.Print(res.Trace)
		}
	}
	switch res.Verdict {
	case ravbmc.Unsafe:
		os.Exit(1)
	case ravbmc.Inconclusive:
		os.Exit(2)
	}
}

func load(file, bench string) (*ravbmc.Program, error) {
	switch {
	case file != "" && bench != "":
		return nil, fmt.Errorf("give either -file or -bench, not both")
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return ravbmc.Parse(string(src))
	case bench != "":
		return benchmarks.ByName(bench)
	}
	return nil, fmt.Errorf("one of -file or -bench is required")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vbmc:", err)
	os.Exit(3)
}
