package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ravbmc/internal/cache"
	"ravbmc/internal/obs"
	"ravbmc/internal/serve"
)

// remoteOptions carries the flag values the -remote path uses.
type remoteOptions struct {
	base       string
	file       string
	bench      string
	portfolio  bool
	k, l       int
	autoK      int
	contexts   int
	exactDedup bool
	timeout    time.Duration
	jsonOut    bool
	showTrace  bool
	traceOut   string
	traceFmt   string
	watch      bool
}

// runRemote sends the verification to a vbmcd daemon and renders the
// reply with the same summary format and exit codes as a local run.
// The daemon's cache answers warm queries without re-exploring.
func runRemote(o remoteOptions) int {
	req := serve.VerifyRequest{
		Mode: cache.ModeVBMC, K: o.k, Unroll: o.l,
		MaxContexts: o.contexts, ExactDedup: o.exactDedup,
	}
	if o.portfolio {
		req.Mode = cache.ModePortfolio
	}
	if o.timeout > 0 {
		req.TimeoutSeconds = o.timeout.Seconds()
	}
	switch {
	case o.file != "" && o.bench != "":
		return fail(fmt.Errorf("give either -file or -bench, not both"))
	case o.file != "":
		src, err := os.ReadFile(o.file)
		if err != nil {
			return fail(err)
		}
		req.Program = string(src)
	case o.bench != "":
		req.Bench = o.bench
	default:
		return fail(fmt.Errorf("one of -file or -bench is required"))
	}

	client := serve.NewClient(o.base)

	// -watch: mint a client_ref so the event stream is addressable
	// before the verify response returns the run ID, then render the
	// daemon's SSE search frames as the same dashboard a local -watch
	// draws. The subscription races request admission, so 404s are
	// retried until the alias binds.
	var watchDone chan struct{}
	var watchCancel context.CancelFunc
	if o.watch {
		req.ClientRef = fmt.Sprintf("vbmc-%d-%x", os.Getpid(), time.Now().UnixNano())
		var wctx context.Context
		wctx, watchCancel = context.WithCancel(context.Background())
		defer watchCancel()
		watchDone = make(chan struct{})
		go watchRemote(wctx, client, req.ClientRef, watchDone)
	}

	var (
		resp serve.VerifyResponse
		err  error
	)
	start := time.Now()
	if o.autoK >= 0 {
		req.K, req.MaxK = 0, o.autoK
		resp, err = client.MinK(context.Background(), req)
		if err == nil && resp.MinK != nil && *resp.MinK >= 0 {
			req.K = *resp.MinK // for the summary line
		}
	} else {
		resp, err = client.Verify(context.Background(), req)
	}
	if watchDone != nil {
		// The stream's done frame trails the verify response by at most
		// a sampler tick; give it a moment, then cut the subscription.
		select {
		case <-watchDone:
		case <-time.After(3 * time.Second):
			watchCancel()
			<-watchDone
		}
	}
	if err != nil {
		return fail(err)
	}

	name := o.bench
	if name == "" {
		name = o.file
	}
	if o.jsonOut {
		out, _ := json.Marshal(resp)
		os.Stdout.Write(append(out, '\n'))
	} else {
		how := "computed"
		switch {
		case resp.Subsumed:
			how = fmt.Sprintf("cache subsumed from K'=%d", resp.SubsumedFromK)
		case resp.Cached:
			how = "cache hit"
		case resp.Collapsed:
			how = "collapsed onto concurrent run"
		}
		fmt.Printf("%s: %s (K=%d, L=%d, remote %s, %s, server %.3fs, round-trip %.3fs)\n",
			name, resp.Verdict, req.K, o.l, req.Mode, how,
			resp.Seconds, time.Since(start).Seconds())
		if resp.Detail != "" && resp.Verdict == cache.VerdictDisagree {
			fmt.Print(resp.Detail)
		}
	}
	if resp.Witness != "" {
		if o.showTrace {
			fmt.Print(resp.Witness)
		}
		if o.traceOut != "" {
			// The daemon ships the witness as ravbmc.witness/v1 JSONL;
			// that is the only format available remotely.
			if o.traceFmt != "jsonl" {
				return fail(fmt.Errorf("-remote supports -trace-format jsonl only (got %q)", o.traceFmt))
			}
			if err := os.WriteFile(o.traceOut, []byte(resp.Witness), 0o644); err != nil {
				return fail(err)
			}
		}
	}
	switch resp.Verdict {
	case cache.VerdictUnsafe:
		return 1
	case cache.VerdictSafe:
		return 0
	case cache.VerdictDisagree:
		return 4
	}
	return 2
}

// watchRemote drives the -remote -watch dashboard: it subscribes to
// the run's SSE stream (retrying while the client_ref alias is not yet
// bound) and redraws a Watch from every search frame until the done
// frame or cancellation.
func watchRemote(ctx context.Context, client *serve.Client, ref string, done chan<- struct{}) {
	defer close(done)
	w := obs.NewWatch(os.Stderr)
	for {
		err := client.StreamEvents(ctx, ref, func(event string, data []byte) error {
			switch event {
			case "search":
				var p obs.SearchPoint
				if json.Unmarshal(data, &p) == nil {
					w.Update(p)
				}
			case "done":
				var d struct {
					Status  string `json:"status"`
					Verdict string `json:"verdict"`
				}
				if json.Unmarshal(data, &d) == nil {
					w.Close(fmt.Sprintf("run %s: %s", d.Status, d.Verdict))
				}
			}
			return nil
		})
		if err == serve.ErrRunNotFound {
			select {
			case <-ctx.Done():
				return
			case <-time.After(200 * time.Millisecond):
				continue
			}
		}
		return
	}
}
