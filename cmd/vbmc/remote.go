package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ravbmc/internal/cache"
	"ravbmc/internal/serve"
)

// remoteOptions carries the flag values the -remote path uses.
type remoteOptions struct {
	base       string
	file       string
	bench      string
	portfolio  bool
	k, l       int
	autoK      int
	contexts   int
	exactDedup bool
	timeout    time.Duration
	jsonOut    bool
	showTrace  bool
	traceOut   string
	traceFmt   string
}

// runRemote sends the verification to a vbmcd daemon and renders the
// reply with the same summary format and exit codes as a local run.
// The daemon's cache answers warm queries without re-exploring.
func runRemote(o remoteOptions) int {
	req := serve.VerifyRequest{
		Mode: cache.ModeVBMC, K: o.k, Unroll: o.l,
		MaxContexts: o.contexts, ExactDedup: o.exactDedup,
	}
	if o.portfolio {
		req.Mode = cache.ModePortfolio
	}
	if o.timeout > 0 {
		req.TimeoutSeconds = o.timeout.Seconds()
	}
	switch {
	case o.file != "" && o.bench != "":
		return fail(fmt.Errorf("give either -file or -bench, not both"))
	case o.file != "":
		src, err := os.ReadFile(o.file)
		if err != nil {
			return fail(err)
		}
		req.Program = string(src)
	case o.bench != "":
		req.Bench = o.bench
	default:
		return fail(fmt.Errorf("one of -file or -bench is required"))
	}

	client := serve.NewClient(o.base)
	var (
		resp serve.VerifyResponse
		err  error
	)
	start := time.Now()
	if o.autoK >= 0 {
		req.K, req.MaxK = 0, o.autoK
		resp, err = client.MinK(context.Background(), req)
		if err == nil && resp.MinK != nil && *resp.MinK >= 0 {
			req.K = *resp.MinK // for the summary line
		}
	} else {
		resp, err = client.Verify(context.Background(), req)
	}
	if err != nil {
		return fail(err)
	}

	name := o.bench
	if name == "" {
		name = o.file
	}
	if o.jsonOut {
		out, _ := json.Marshal(resp)
		os.Stdout.Write(append(out, '\n'))
	} else {
		how := "computed"
		switch {
		case resp.Subsumed:
			how = fmt.Sprintf("cache subsumed from K'=%d", resp.SubsumedFromK)
		case resp.Cached:
			how = "cache hit"
		case resp.Collapsed:
			how = "collapsed onto concurrent run"
		}
		fmt.Printf("%s: %s (K=%d, L=%d, remote %s, %s, server %.3fs, round-trip %.3fs)\n",
			name, resp.Verdict, req.K, o.l, req.Mode, how,
			resp.Seconds, time.Since(start).Seconds())
		if resp.Detail != "" && resp.Verdict == cache.VerdictDisagree {
			fmt.Print(resp.Detail)
		}
	}
	if resp.Witness != "" {
		if o.showTrace {
			fmt.Print(resp.Witness)
		}
		if o.traceOut != "" {
			// The daemon ships the witness as ravbmc.witness/v1 JSONL;
			// that is the only format available remotely.
			if o.traceFmt != "jsonl" {
				return fail(fmt.Errorf("-remote supports -trace-format jsonl only (got %q)", o.traceFmt))
			}
			if err := os.WriteFile(o.traceOut, []byte(resp.Witness), 0o644); err != nil {
				return fail(err)
			}
		}
	}
	switch resp.Verdict {
	case cache.VerdictUnsafe:
		return 1
	case cache.VerdictSafe:
		return 0
	case cache.VerdictDisagree:
		return 4
	}
	return 2
}
